(* ------------------------------------------------------------------ *)
(* The mailbox API: reused inbox views and outbox push handles.

   Both sides are growable parallel arrays (an [int array] of endpoints
   next to a ['msg array] of payloads) so that neither delivery nor
   reading materializes tuples, cons cells or send records. Growth
   seeds the fresh payload array with the element being pushed, which
   sidesteps the need for a ['msg] dummy without [Obj.magic]; arrays
   only ever grow, so the steady state of a run allocates nothing in
   the message plumbing. *)

type 'msg inbox = {
  mutable i_src : int array;
  mutable i_msg : 'msg array;
  mutable i_len : int;
  i_hint : int;
      (* First growth jumps straight to this capacity: the engine
         hints each bank buffer with its vertex's degree, so a run
         allocates each buffer once instead of walking a doubling
         chain. *)
}

type 'msg outbox = {
  mutable o_dst : int array;
  mutable o_msg : 'msg array;
  mutable o_len : int;
  o_hint : int;
}

let inbox_create ?(hint = 0) () =
  { i_src = [||]; i_msg = [||]; i_len = 0; i_hint = hint }

let inbox_clear ib = ib.i_len <- 0
let inbox_length ib = ib.i_len
let inbox_src ib i = ib.i_src.(i)
let inbox_payload ib i = ib.i_msg.(i)

let inbox_push ib ~src msg =
  let cap = Array.length ib.i_msg in
  if ib.i_len = cap then begin
    let ncap = max (max 8 ib.i_hint) (2 * cap) in
    let msgs = Array.make ncap msg in
    Array.blit ib.i_msg 0 msgs 0 ib.i_len;
    ib.i_msg <- msgs;
    let srcs = Array.make ncap 0 in
    Array.blit ib.i_src 0 srcs 0 ib.i_len;
    ib.i_src <- srcs
  end;
  ib.i_src.(ib.i_len) <- src;
  ib.i_msg.(ib.i_len) <- msg;
  ib.i_len <- ib.i_len + 1

let inbox_iter f ib =
  for i = 0 to ib.i_len - 1 do
    f ~src:ib.i_src.(i) ib.i_msg.(i)
  done

let inbox_fold f acc ib =
  let acc = ref acc in
  for i = 0 to ib.i_len - 1 do
    acc := f !acc ~src:ib.i_src.(i) ib.i_msg.(i)
  done;
  !acc

let outbox_create ?(hint = 0) () =
  { o_dst = [||]; o_msg = [||]; o_len = 0; o_hint = hint }

let outbox_clear ob = ob.o_len <- 0
let outbox_length ob = ob.o_len

let emit ob ~dst msg =
  let cap = Array.length ob.o_msg in
  if ob.o_len = cap then begin
    let ncap = max (max 8 ob.o_hint) (2 * cap) in
    let msgs = Array.make ncap msg in
    Array.blit ob.o_msg 0 msgs 0 ob.o_len;
    ob.o_msg <- msgs;
    let dsts = Array.make ncap 0 in
    Array.blit ob.o_dst 0 dsts 0 ob.o_len;
    ob.o_dst <- dsts
  end;
  ob.o_dst.(ob.o_len) <- dst;
  ob.o_msg.(ob.o_len) <- msg;
  ob.o_len <- ob.o_len + 1

let outbox_iter f ob =
  for i = 0 to ob.o_len - 1 do
    f ~dst:ob.o_dst.(i) ob.o_msg.(i)
  done

let outbox_dst ob i = ob.o_dst.(i)
let outbox_payload ob i = ob.o_msg.(i)

(* In-place dedup keeping the first message of every source, for the
   retransmit wrapper: duplicates (retransmitted copies, adversarial
   [Duplicate]s) arrive as extra entries sharing a [src], and protocols
   that send at most one message per (src, dst) per round can restore
   their expected inbox shape with this. Quadratic in the inbox length,
   which is degree-bounded; allocates nothing. *)
let inbox_keep_first_per_src ib =
  let len = ib.i_len in
  if len > 1 then begin
    let w = ref 1 in
    for i = 1 to len - 1 do
      let s = ib.i_src.(i) in
      let dup = ref false in
      let j = ref 0 in
      while (not !dup) && !j < !w do
        if ib.i_src.(!j) = s then dup := true;
        incr j
      done;
      if not !dup then begin
        ib.i_src.(!w) <- s;
        ib.i_msg.(!w) <- ib.i_msg.(i);
        incr w
      end
    done;
    ib.i_len <- !w
  end

(* Per-shard [(vertex, send-count)] segment index for the parallel
   merge: shard outboxes are contiguous concatenations of their
   vertices' sends, so the merge replays [cnt] messages per recorded
   vertex at a running offset — no per-vertex lists. *)
type seg = {
  mutable s_v : int array;
  mutable s_cnt : int array;
  mutable s_len : int;
}

let seg_make () = { s_v = [||]; s_cnt = [||]; s_len = 0 }

let seg_push s v c =
  let cap = Array.length s.s_v in
  if s.s_len = cap then begin
    let ncap = max 8 (2 * cap) in
    let nv = Array.make ncap 0 in
    let nc = Array.make ncap 0 in
    Array.blit s.s_v 0 nv 0 s.s_len;
    Array.blit s.s_cnt 0 nc 0 s.s_len;
    s.s_v <- nv;
    s.s_cnt <- nc
  end;
  s.s_v.(s.s_len) <- v;
  s.s_cnt.(s.s_len) <- c;
  s.s_len <- s.s_len + 1

(* ------------------------------------------------------------------ *)

type metrics = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_message_bits : int;
  congest_violations : int;
  steps : int;
  dropped : int;
  crashed : int;
  sent_physical : int;
  sent_bits : int;
  minor_words : float;
  allocated_bytes : float;
}

(* Logical layer only: the fields a frugal run keeps bit-identical to
   a plain run (everything deterministic except the physical stream
   and the GC counters). *)
let metrics_logical_eq a b =
  a.rounds = b.rounds && a.messages = b.messages
  && a.total_bits = b.total_bits
  && a.max_message_bits = b.max_message_bits
  && a.congest_violations = b.congest_violations
  && a.steps = b.steps && a.dropped = b.dropped && a.crashed = b.crashed

let metrics_deterministic_eq a b =
  metrics_logical_eq a b
  && a.sent_physical = b.sent_physical
  && a.sent_bits = b.sent_bits

type sched = [ `Active | `Active_legacy_cost | `Naive ]

type ('state, 'msg) spec = {
  init :
    n:int -> vertex:int -> neighbors:int array -> out:'msg outbox ->
    'state;
  step :
    round:int -> vertex:int -> 'state -> 'msg inbox -> out:'msg outbox ->
    'state * [ `Continue | `Done ];
  measure : 'msg -> int;
}

exception Congest_violation of { src : int; dst : int; bits : int }

(* The legacy [observer] is a thin wrapper over a [Send]-only trace
   sink; the engine internally folds it into the sink it traces to. *)
let effective_trace ?observer trace =
  match observer with
  | None -> trace
  | Some f -> Trace.tee (Trace.of_observer f) trace

let now_ns = Clock.now_ns

(* Message accounting shared by both schedulers, one message at a
   time. [round] is the engine's current-round cell (0 during init),
   read when stamping [Send] events. [take_round] snapshots and resets
   the per-round deltas for a [Round_end] event; it is only called
   when tracing, and the per-round counters are only maintained when
   tracing, so the [Trace.null] path does exactly the work the
   untraced engine did. GC pressure is metered from [Gc] counters on
   the calling domain: run totals always (two float reads at the
   boundaries), per-round deltas only when tracing. [profile], when
   installed, sees every metered message's size; like the trace
   emission this happens on the calling (merge) thread only. *)
let make_accounting ?observer ?adversary ?profile ?frugal ~trace ~round
    ~strict ~graph ~measure () =
  let trace = effective_trace ?observer trace in
  let tracing = not (Trace.is_null trace) in
  let wants_sends = Trace.wants_sends trace in
  let frugal_on = frugal <> None in
  let messages = ref 0 in
  let total_bits = ref 0 in
  let max_message_bits = ref 0 in
  let congest_violations = ref 0 in
  let dropped = ref 0 in
  (* The physical stream ([frugal] only; a plain run's physical stream
     {e is} its logical one, copied at [finish] time). *)
  let phys_messages = ref 0 in
  let phys_bits = ref 0 in
  let minor0 = Gc.minor_words () in
  let alloc0 = Gc.allocated_bytes () in
  (* Per-round deltas (tracing only, except [r_dropped] which also
     feeds the per-round [dropped] column and costs nothing when no
     adversary is installed). *)
  let r_messages = ref 0 in
  let r_bits = ref 0 in
  let r_max_bits = ref 0 in
  let r_violations = ref 0 in
  let r_dropped = ref 0 in
  let r_physical = ref 0 in
  let r_minor_base = ref minor0 in
  (* Meter one logical message (it {e was} sent, delivered or not):
     run totals, per-round deltas, congestion check. On a plain run
     this is also the physical stream, so the profile hook and [Send]
     emission live here; under [?frugal] those describe the physical
     stream and move to [charge] below. *)
  let meter ~bandwidth src dst bits =
    if not frugal_on then begin
      (match profile with Some p -> Profile.record_bits p bits | None -> ());
      if tracing && wants_sends then
        Trace.emit trace (Trace.Send { src; dst; bits; round = !round })
    end;
    if tracing then begin
      incr r_messages;
      r_bits := !r_bits + bits;
      if bits > !r_max_bits then r_max_bits := bits
    end;
    incr messages;
    total_bits := !total_bits + bits;
    if bits > !max_message_bits then max_message_bits := bits;
    match bandwidth with
    | Some limit when bits > limit ->
        if strict then raise (Congest_violation { src; dst; bits })
        else begin
          incr congest_violations;
          if tracing then incr r_violations
        end
    | _ -> ()
  in
  (* Meter one physical message (frugal runs only): what would
     actually cross the wire once silences and collection trees are in
     play. [dst = -1] is the receiver side of an aggregated collect;
     tree-internal hops are represented by the publish itself. *)
  let charge src dst bits =
    (match profile with Some p -> Profile.record_bits p bits | None -> ());
    incr phys_messages;
    phys_bits := !phys_bits + bits;
    if tracing then begin
      incr r_physical;
      if wants_sends then
        Trace.emit trace (Trace.Send { src; dst; bits; round = !round })
    end
  in
  let check_edge src dst =
    if not (Grapho.Ugraph.mem_edge graph src dst) then
      invalid_arg
        (Printf.sprintf "Engine: vertex %d sent to non-neighbor %d" src dst)
  in
  (* The adversary and frugal branches are resolved {e once} here, so
     the plain no-adversary account path is exactly the
     pre-fault-injection code. [account] meters one message;
     [account_seg] meters one drained outbox segment (all sends of one
     vertex this round) so the frugal path can recognize
     full-neighborhood broadcasts; [flush_round] settles end-of-round
     physical state (end-of-silence markers, aggregated collects). *)
  let plain_account =
    match adversary with
    | None ->
        fun ~bandwidth ~deliver src dst payload ->
          check_edge src dst;
          meter ~bandwidth src dst (measure payload);
          deliver ~src ~dst payload
    | Some adv -> (
        fun ~bandwidth ~deliver src dst payload ->
          check_edge src dst;
          let bits = measure payload in
          match Adversary.consult adv ~src ~dst with
          | Adversary.Deliver ->
              meter ~bandwidth src dst bits;
              deliver ~src ~dst payload
          | Adversary.Duplicate ->
              meter ~bandwidth src dst bits;
              deliver ~src ~dst payload;
              meter ~bandwidth src dst bits;
              deliver ~src ~dst payload
          | Adversary.Drop reason ->
              meter ~bandwidth src dst bits;
              incr dropped;
              incr r_dropped;
              if tracing && wants_sends then
                Trace.emit trace
                  (Trace.Message_dropped
                     { src; dst; round = !round; reason }))
  in
  let account, account_seg, flush_round =
    match frugal with
    | None ->
        let seg ~bandwidth ~deliver src dsts msgs ~lo ~hi =
          for i = lo to hi - 1 do
            plain_account ~bandwidth ~deliver src
              (Array.unsafe_get dsts i)
              (Array.unsafe_get msgs i)
          done
        in
        (plain_account, seg, fun () -> ())
    | Some fr ->
        if
          not
            (Frugal.graph fr == graph
            || Grapho.Ugraph.equal (Frugal.graph fr) graph)
        then invalid_arg "Engine: ?frugal value built for a different graph";
        (* [Auto] mode: per-edge suppression starts observe-only —
           direct sends are charged at full size (physical = logical
           on those edges) while the repeat statistics accumulate;
           [flush_round] arms or permanently disarms the machine once
           the window closes. All mutation happens on the merge
           thread in delivery order, so the decision — and with it
           the whole physical stream — is deterministic across
           schedulers and shard counts. *)
        let obs_window = Frugal.auto_window fr in
        let suppress_on = ref (obs_window = 0) in
        let auto_decided = ref (obs_window = 0) in
        let obs_repeats = ref 0 in
        let obs_runs = ref 0 in
        let n = Grapho.Ugraph.n graph in
        let m2 = 2 * Grapho.Ugraph.m graph in
        (* Per-directed-edge send memo, keyed by [Ugraph.edge_slot].
           The payload array needs a ['msg] seed, so the whole memo is
           allocated on the first direct (non-broadcast) send — runs
           that only ever broadcast (flood on the million-vertex
           anchors) never pay the 2m words. Flag bits: 1 = silence
           armed, 2 = queued in the sweep stack. *)
        let e_msg = ref [||] in
        let e_round = ref [||] in
        let e_flag = ref Bytes.empty in
        let ensure_edge payload =
          if Array.length !e_round = 0 && m2 > 0 then begin
            e_msg := Array.make m2 payload;
            e_round := Array.make m2 min_int;
            e_flag := Bytes.make m2 '\000'
          end
        in
        (* Sweep stack of directed edges whose silence may need an
           end-of-round Eps marker. *)
        let sw_slot = ref (Array.make 16 0) in
        let sw_src = ref (Array.make 16 0) in
        let sw_dst = ref (Array.make 16 0) in
        let sw_len = ref 0 in
        let sw_push slot src dst =
          let cap = Array.length !sw_slot in
          if !sw_len = cap then begin
            let grow a =
              let na = Array.make (2 * cap) 0 in
              Array.blit !a 0 na 0 cap;
              a := na
            in
            grow sw_slot;
            grow sw_src;
            grow sw_dst
          end;
          !sw_slot.(!sw_len) <- slot;
          !sw_src.(!sw_len) <- src;
          !sw_dst.(!sw_len) <- dst;
          incr sw_len
        in
        let ipush stack len v =
          let cap = Array.length !stack in
          if !len = cap then begin
            let na = Array.make (2 * cap) 0 in
            Array.blit !stack 0 na 0 cap;
            stack := na
          end;
          !stack.(!len) <- v;
          incr len
        in
        (* Per-vertex broadcast memo (same machine, one cell per
           broadcaster) and the per-receiver collect accumulators. *)
        let b_msg = ref [||] in
        let b_round = Array.make (max n 1) min_int in
        let b_flag = Bytes.make (max n 1) '\000' in
        let vw = ref (Array.make 16 0) in
        let vw_len = ref 0 in
        let c_round = Array.make (max n 1) min_int in
        let c_bits = Array.make (max n 1) 0 in
        let cw = ref (Array.make 16 0) in
        let cw_len = ref 0 in
        (* Pointer fast path first; the structural fallback guards
           against payload types [compare] rejects. *)
        let payload_eq a b =
          a == b || (try a = b with Invalid_argument _ -> false)
        in
        let mark_collect w bits =
          if c_round.(w) <> !round then begin
            c_round.(w) <- !round;
            c_bits.(w) <- 2;
            ipush cw cw_len w
          end;
          c_bits.(w) <- c_bits.(w) + bits
        in
        (* The silence state machine for one direct send. Arm on the
           {e second} consecutive identical send (one-shot payloads
           stay at exact parity with the plain stream): fresh data
           costs [bits], the arming repeat costs a 2-bit Again marker,
           further repeats cost nothing, and the round after the run
           ends [flush_round] pays a 2-bit Eps marker. *)
        let direct src dst payload bits =
          ensure_edge payload;
          let slot = Grapho.Ugraph.edge_slot graph src dst in
          let er = !e_round and ef = !e_flag in
          let flag = Char.code (Bytes.unsafe_get ef slot) in
          let repeat =
            Array.unsafe_get er slot = !round - 1
            && payload_eq (Array.unsafe_get !e_msg slot) payload
          in
          if !suppress_on then begin
            if repeat then begin
              if flag land 1 = 1 then Frugal.note_suppressed fr 1
              else begin
                if flag land 2 = 0 then sw_push slot src dst;
                Bytes.unsafe_set ef slot (Char.chr (flag lor 3));
                charge src dst 2;
                Frugal.note_marker fr
              end
            end
            else begin
              if flag land 1 = 1 then
                Bytes.unsafe_set ef slot (Char.chr (flag land lnot 1));
              charge src dst bits
            end
          end
          else begin
            (* Observe-only (an [Auto] window, or an [Auto] run that
               decided against markers): full charge, plus — while
               undecided — run-length statistics through flag bit 4. *)
            if !auto_decided then ()
            else if repeat then begin
              incr obs_repeats;
              if flag land 4 = 0 then begin
                incr obs_runs;
                Bytes.unsafe_set ef slot (Char.chr (flag lor 4))
              end
            end
            else if flag land 4 <> 0 then
              Bytes.unsafe_set ef slot (Char.chr (flag land lnot 4));
            charge src dst bits
          end;
          Array.unsafe_set er slot !round;
          Array.unsafe_set !e_msg slot payload
        in
        (* A faulted copy went over the wire regardless of the memo:
           record the send without engaging suppression. *)
        let force src dst payload =
          ensure_edge payload;
          let slot = Grapho.Ugraph.edge_slot graph src dst in
          let flag = Char.code (Bytes.get !e_flag slot) in
          if flag land 1 = 1 then
            Bytes.set !e_flag slot (Char.chr (flag land lnot 1));
          !e_round.(slot) <- !round;
          !e_msg.(slot) <- payload
        in
        (* A drop desynchronizes the receiver's replay cache, so the
           silence convention on that edge must be re-established from
           scratch. *)
        let invalidate src dst =
          if Array.length !e_round > 0 then begin
            let slot = Grapho.Ugraph.edge_slot graph src dst in
            !e_round.(slot) <- min_int;
            let flag = Char.code (Bytes.get !e_flag slot) in
            if flag land 1 = 1 then
              Bytes.set !e_flag slot (Char.chr (flag land lnot 1))
          end
        in
        let account =
          match adversary with
          | None ->
              fun ~bandwidth ~deliver src dst payload ->
                check_edge src dst;
                let bits = measure payload in
                meter ~bandwidth src dst bits;
                direct src dst payload bits;
                deliver ~src ~dst payload
          | Some adv -> (
              (* The coin stream is consulted per {e logical} message
                 in delivery order, exactly as on a plain run, so
                 faulted executions stay bit-identical with and
                 without [?frugal]. Faulted copies are charged at full
                 size (a sender cannot lean on silence over a lossy
                 link), conservatively never under-counting. *)
              fun ~bandwidth ~deliver src dst payload ->
                check_edge src dst;
                let bits = measure payload in
                match Adversary.consult adv ~src ~dst with
                | Adversary.Deliver ->
                    meter ~bandwidth src dst bits;
                    direct src dst payload bits;
                    deliver ~src ~dst payload
                | Adversary.Duplicate ->
                    meter ~bandwidth src dst bits;
                    charge src dst bits;
                    deliver ~src ~dst payload;
                    meter ~bandwidth src dst bits;
                    charge src dst bits;
                    deliver ~src ~dst payload;
                    force src dst payload
                | Adversary.Drop reason ->
                    meter ~bandwidth src dst bits;
                    charge src dst bits;
                    invalidate src dst;
                    incr dropped;
                    incr r_dropped;
                    if tracing && wants_sends then
                      Trace.emit trace
                        (Trace.Message_dropped
                           { src; dst; round = !round; reason }))
        in
        (* One full-neighborhood broadcast: bulk logical metering, one
           tree publish, and a collect mark per receiver (aggregated
           into one physical message per receiver per round at
           [flush_round]). Repeated broadcasts run the same silence
           machine per broadcaster. *)
        let broadcast ~bandwidth src dsts payload ~lo ~hi =
          let bits = measure payload in
          let cnt = hi - lo in
          if tracing then begin
            r_messages := !r_messages + cnt;
            r_bits := !r_bits + (cnt * bits);
            if bits > !r_max_bits then r_max_bits := bits
          end;
          messages := !messages + cnt;
          total_bits := !total_bits + (cnt * bits);
          if bits > !max_message_bits then max_message_bits := bits;
          (match bandwidth with
          | Some limit when bits > limit ->
              if strict then
                raise (Congest_violation { src; dst = dsts.(lo); bits })
              else begin
                congest_violations := !congest_violations + cnt;
                if tracing then r_violations := !r_violations + cnt
              end
          | _ -> ());
          if Array.length !b_msg = 0 then b_msg := Array.make (max n 1) payload;
          let repeat =
            b_round.(src) = !round - 1 && payload_eq !b_msg.(src) payload
          in
          let flag = Char.code (Bytes.get b_flag src) in
          if repeat && flag land 1 = 1 then Frugal.note_suppressed fr 1
          else begin
            let pub_bits =
              if repeat then begin
                if flag land 2 = 0 then ipush vw vw_len src;
                Bytes.set b_flag src (Char.chr (flag lor 3));
                Frugal.note_marker fr;
                2
              end
              else begin
                if flag land 1 = 1 then
                  Bytes.set b_flag src (Char.chr (flag land lnot 1));
                Frugal.note_publish fr;
                bits
              end
            in
            charge src (Frugal.hub fr src) pub_bits;
            for i = lo to hi - 1 do
              mark_collect (Array.unsafe_get dsts i) pub_bits
            done
          end;
          b_round.(src) <- !round;
          !b_msg.(src) <- payload
        in
        let account_seg =
          match adversary with
          | Some _ ->
              (* Collection trees assume a reliable network; under an
                 adversary every message takes the per-edge path so
                 the coin stream is untouched. *)
              fun ~bandwidth ~deliver src dsts msgs ~lo ~hi ->
                for i = lo to hi - 1 do
                  account ~bandwidth ~deliver src
                    (Array.unsafe_get dsts i)
                    (Array.unsafe_get msgs i)
                done
          | None ->
              (* A segment is a broadcast when it spells out the whole
                 neighbor row with one shared (physically equal)
                 payload — which is what the protocols' broadcast
                 helpers emit. Everything else takes the per-edge
                 path. The broadcast test replaces the per-message
                 [mem_edge] binary searches with one linear row
                 comparison, which is where the frugal merge-path
                 speedup comes from. *)
              fun ~bandwidth ~deliver src dsts msgs ~lo ~hi ->
                let slow () =
                  for j = lo to hi - 1 do
                    account ~bandwidth ~deliver src
                      (Array.unsafe_get dsts j)
                      (Array.unsafe_get msgs j)
                  done
                in
                if hi - lo >= 2 then begin
                  let p0 = Array.unsafe_get msgs lo in
                  let shared = ref true in
                  let i = ref (lo + 1) in
                  while !shared && !i < hi do
                    if Array.unsafe_get msgs !i != p0 then shared := false;
                    incr i
                  done;
                  if
                    !shared
                    && Grapho.Ugraph.row_matches graph src dsts ~lo ~hi
                  then begin
                    broadcast ~bandwidth src dsts p0 ~lo ~hi;
                    for j = lo to hi - 1 do
                      deliver ~src ~dst:(Array.unsafe_get dsts j) p0
                    done
                  end
                  else slow ()
                end
                else slow ()
        in
        let blocked =
          match adversary with
          | None -> fun _ _ -> false
          | Some adv ->
              fun src dst -> Adversary.blocks adv ~src ~dst <> None
        in
        let flush_round () =
          let r = !round in
          (* Close an [Auto] observation window: arm iff the marker
             pair per silence run costs fewer physical messages than
             the repeats it would silence (average run length > 2). *)
          if (not !auto_decided) && r >= obs_window then begin
            auto_decided := true;
            let armed = !obs_repeats > 2 * !obs_runs in
            suppress_on := armed;
            Frugal.note_auto_decision fr ~armed
          end;
          (* Silences whose run ended this round pay their Eps marker
             (skipped silently when the edge is crashed or cut — the
             marker could not cross, and [blocks] reads no coins). *)
          let w = ref 0 in
          for i = 0 to !sw_len - 1 do
            let slot = !sw_slot.(i) in
            let flag = Char.code (Bytes.get !e_flag slot) in
            if flag land 1 = 1 then
              if !e_round.(slot) >= r then begin
                !sw_slot.(!w) <- slot;
                !sw_src.(!w) <- !sw_src.(i);
                !sw_dst.(!w) <- !sw_dst.(i);
                incr w
              end
              else begin
                Bytes.set !e_flag slot '\000';
                let src = !sw_src.(i) and dst = !sw_dst.(i) in
                if not (blocked src dst) then begin
                  charge src dst 2;
                  Frugal.note_marker fr
                end
              end
            else Bytes.set !e_flag slot (Char.chr (flag land lnot 2))
          done;
          sw_len := !w;
          (* Same sweep for armed broadcasters. *)
          let w = ref 0 in
          for i = 0 to !vw_len - 1 do
            let v = !vw.(i) in
            let flag = Char.code (Bytes.get b_flag v) in
            if flag land 1 = 1 then
              if b_round.(v) >= r then begin
                !vw.(!w) <- v;
                incr w
              end
              else begin
                Bytes.set b_flag v '\000';
                charge v (Frugal.hub fr v) 2;
                Frugal.note_marker fr;
                Grapho.Ugraph.iter_neighbors
                  (fun u -> mark_collect u 2)
                  graph v
              end
            else Bytes.set b_flag v (Char.chr (flag land lnot 2))
          done;
          vw_len := !w;
          (* Flush the aggregated collects: one physical message per
             receiver that heard tree traffic this round, 2 header
             bits plus everything fetched. [src = -1] marks the
             receiver side of a tree, like [Phase]'s global -1. *)
          for i = 0 to !cw_len - 1 do
            let v = !cw.(i) in
            charge (-1) v c_bits.(v);
            Frugal.note_collect fr
          done;
          cw_len := 0
        in
        (account, account_seg, flush_round)
  in
  let finish rounds ~steps ~crashed =
    {
      rounds;
      messages = !messages;
      total_bits = !total_bits;
      max_message_bits = !max_message_bits;
      congest_violations = !congest_violations;
      steps;
      dropped = !dropped;
      crashed;
      sent_physical = (if frugal_on then !phys_messages else !messages);
      sent_bits = (if frugal_on then !phys_bits else !total_bits);
      minor_words = (Gc.minor_words () -. minor0);
      allocated_bytes =
        (* [Gc.minor_words] is precise (it adds the unflushed young
           region), but on this runtime [Gc.allocated_bytes] only
           advances when the minor heap is flushed, so for runs that
           fit inside one minor heap the raw delta undercounts —
           while still being the only counter that sees direct
           major-heap allocations (blocks over 256 words, e.g. big
           arrays). Take the max of both views: a conservative lower
           bound on total allocation that is never below the minor
           activity actually measured. *)
        (let raw = Gc.allocated_bytes () -. alloc0 in
         let word_bytes = float_of_int (Sys.word_size / 8) in
         Float.max (word_bytes *. (Gc.minor_words () -. minor0)) raw);
    }
  in
  let take_round ~stepped ~vdone ~crashed ~elapsed_ns r =
    let minor_now = Gc.minor_words () in
    let stat =
      {
        Trace.round = r;
        messages = !r_messages;
        bits = !r_bits;
        max_bits = !r_max_bits;
        vertices_stepped = stepped;
        vertices_done = vdone;
        congest_violations = !r_violations;
        dropped = !r_dropped;
        crashed;
        elapsed_ns;
        minor_words = int_of_float (minor_now -. !r_minor_base);
        physical = (if frugal_on then !r_physical else !r_messages);
      }
    in
    r_minor_base := minor_now;
    r_messages := 0;
    r_bits := 0;
    r_max_bits := 0;
    r_violations := 0;
    r_dropped := 0;
    r_physical := 0;
    stat
  in
  (trace, tracing, account, account_seg, finish, take_round, flush_round)

(* Round 0 shared by both schedulers: initialize vertices in ascending
   id order, draining the shared outbox after each init so delivery,
   metric and trace side effects happen in exactly per-vertex ascending
   order. The first vertex's state seeds the states array (no dummy
   ['state] exists). *)
let init_states ~n ~graph ~(spec : _ spec) ~out ~drain =
  if n = 0 then [||]
  else begin
    let s0 =
      spec.init ~n ~vertex:0
        ~neighbors:(Grapho.Ugraph.neighbors graph 0) ~out
    in
    let states = Array.make n s0 in
    drain 0;
    for v = 1 to n - 1 do
      states.(v) <-
        spec.init ~n ~vertex:v
          ~neighbors:(Grapho.Ugraph.neighbors graph v) ~out;
      drain v
    done;
    states
  end

(* Sparse activation ([?active]): the engine can run a spec on a
   restricted vertex set. Semantically the run IS the protocol on the
   induced subgraph [graph[active]] — init hands each active vertex
   only its active neighbors, deliveries to frozen vertices are
   rejected, and termination quantifies over the active set — but
   vertex ids, the randomness they key, and [check_edge]'s membership
   probes all stay global, so a protocol needs no renumbering. Every
   engine structure (states, done flags, inbox banks) is sized to
   |active|, not n: the per-round and per-run cost scales with the
   activation footprint, which is what makes ball-local spanner
   repair cheaper than recomputing. Only the vertex-id -> slot map is
   O(n). The slot order equals the (strictly ascending) active order,
   so side effects replay in ascending vertex id exactly like a dense
   run and the seq / par / naive bit-identity contract carries over
   unchanged. *)
let validate_active ~n = function
  | None -> ()
  | Some act ->
      let prev = ref (-1) in
      Array.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg
              (Printf.sprintf "Engine: ?active vertex %d out of range [0,%d)"
                 v n);
          if v <= !prev then
            invalid_arg "Engine: ?active must be strictly ascending";
          prev := v)
        act

let slot_of_vertex ~n act =
  let pos = Array.make n (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) act;
  pos

let filtered_neighbors ~graph ~pos v =
  let cnt =
    Grapho.Ugraph.fold_neighbors
      (fun acc u -> if Array.unsafe_get pos u >= 0 then acc + 1 else acc)
      graph v 0
  in
  let arr = Array.make cnt 0 in
  let i = ref 0 in
  Grapho.Ugraph.iter_neighbors
    (fun u ->
      if Array.unsafe_get pos u >= 0 then begin
        arr.(!i) <- u;
        incr i
      end)
    graph v;
  arr

(* Round 0 of a sparse run: same ascending-order init-and-drain
   discipline as [init_states], over the active set, with each
   vertex's neighbor array filtered to the active set. *)
let init_states_sparse ~n ~graph ~(spec : _ spec) ~act ~pos ~out ~drain =
  let a = Array.length act in
  if a = 0 then [||]
  else begin
    let v0 = act.(0) in
    let s0 =
      spec.init ~n ~vertex:v0
        ~neighbors:(filtered_neighbors ~graph ~pos v0)
        ~out
    in
    let states = Array.make a s0 in
    drain v0;
    for i = 1 to a - 1 do
      let v = act.(i) in
      states.(i) <-
        spec.init ~n ~vertex:v
          ~neighbors:(filtered_neighbors ~graph ~pos v)
          ~out;
      drain v
    done;
    states
  end

(* The retained reference path: step every vertex every round, rebuild
   and sort every inbox from a per-round list. Kept deliberately
   list-based (modulo the mailbox calling convention) so the
   equivalence suite can diff the zero-allocation active scheduler
   against an independently-structured implementation. *)
(* Normalizing an empty-schedule adversary away keeps the [None] hot
   path byte-for-byte what it was before fault injection existed — the
   drop-p=0 ≡ no-adversary identity holds trivially. *)
let normalize_adversary = function
  | Some a when not (Adversary.has_faults a) -> None
  | a -> a

let run_naive ?max_rounds ?(strict = false) ?observer ?(trace = Trace.null)
    ?adversary ?profile ?frugal ?active ~model ~graph spec =
  let n = Grapho.Ugraph.n graph in
  let adversary = normalize_adversary adversary in
  (match adversary with Some a -> Adversary.reset a ~n | None -> ());
  (* [a] vertices actually run; [slot] indexes the engine's arrays and
     equals the vertex id on a dense run. *)
  let sparse = active <> None in
  let act = match active with Some act -> act | None -> [||] in
  let a = if sparse then Array.length act else n in
  let pos = if sparse then slot_of_vertex ~n act else [||] in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 50 * (a + 5)
  in
  let done_flags = Array.make a false in
  let inboxes = Array.make a [] in
  let bandwidth = Model.bandwidth model in
  let in_flight = ref 0 in
  let round = ref 0 in
  let profiling = profile <> None in
  (match profile with Some p -> Profile.run_begin p | None -> ());
  let trace, tracing, _account, account_seg, finish, take_round, flush_round =
    make_accounting ?observer ?adversary ?profile ?frugal ~trace ~round
      ~strict ~graph ~measure:spec.measure ()
  in
  let crashed_now () =
    match adversary with None -> 0 | Some a -> Adversary.crashed_count a
  in
  let is_crashed =
    match adversary with
    | None -> fun _ -> false
    | Some a -> fun v -> Adversary.is_crashed a v
  in
  let deliver =
    if not sparse then fun ~src ~dst payload ->
      incr in_flight;
      inboxes.(dst) <- (src, payload) :: inboxes.(dst)
    else fun ~src ~dst payload ->
      let slot = pos.(dst) in
      if slot < 0 then
        invalid_arg
          (Printf.sprintf "Engine: vertex %d sent to frozen vertex %d" src
             dst);
      incr in_flight;
      inboxes.(slot) <- (src, payload) :: inboxes.(slot)
  in
  let out = outbox_create () in
  let drain src =
    account_seg ~bandwidth ~deliver src out.o_dst out.o_msg ~lo:0
      ~hi:out.o_len;
    out.o_len <- 0
  in
  let scratch = inbox_create () in
  let steps = ref 0 in
  let count_done () =
    Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 done_flags
  in
  let round_end t0 ~stepped =
    flush_round ();
    let t1 = if tracing || profiling then now_ns () else 0 in
    (match profile with
    | Some p -> Profile.round_span p ~round:!round ~t0 ~t1
    | None -> ());
    if tracing then
      Trace.emit trace
        (Trace.Round_end
           (take_round ~stepped ~vdone:(count_done ())
              ~crashed:(crashed_now ()) ~elapsed_ns:(t1 - t0) !round))
  in
  (* Round 0: init everyone (active vertices only on a sparse run). *)
  if tracing then Trace.emit trace (Trace.Round_begin 0);
  let t0 = if tracing || profiling then now_ns () else 0 in
  let states =
    if sparse then init_states_sparse ~n ~graph ~spec ~act ~pos ~out ~drain
    else init_states ~n ~graph ~spec ~out ~drain
  in
  steps := a;
  round_end t0 ~stepped:a;
  let all_done () = Array.for_all (fun f -> f) done_flags in
  let finished = ref (a = 0) in
  while not !finished do
    incr round;
    if !round > max_rounds then
      failwith
        (Printf.sprintf "Engine.run: no termination within %d rounds"
           max_rounds);
    if tracing then Trace.emit trace (Trace.Round_begin !round);
    let t0 = if tracing || profiling then now_ns () else 0 in
    (* Activate scheduled faults for this round before the inbox
       snapshot: a vertex crash-stopped at round [r] loses the
       messages that were about to arrive at [r] and never steps
       again (deliveries to it are dropped at [consult] time, so it
       stays quiet forever). *)
    (match adversary with
    | None -> ()
    | Some adv ->
        Adversary.begin_round adv ~round:!round (fun kind ->
            (match kind with
            | Trace.Crash v ->
                (* On a sparse run the engine arrays are slot-indexed;
                   a crash scheduled at a frozen vertex touches no
                   engine state (the vertex was never running — the
                   adversary still drops traffic addressed to it, of
                   which there is none). *)
                let slot = if sparse then pos.(v) else v in
                if slot >= 0 then begin
                  inboxes.(slot) <- [];
                  done_flags.(slot) <- true
                end
            | Trace.Cut _ | Trace.Restore _ -> ());
            if tracing then
              Trace.emit trace (Trace.Fault_injected { round = !round; kind })));
    (* Snapshot and clear inboxes so this round's sends arrive next
       round. *)
    let current = Array.copy inboxes in
    Array.fill inboxes 0 a [];
    in_flight := 0;
    let stepped = ref 0 in
    for slot = 0 to a - 1 do
      let v = if sparse then act.(slot) else slot in
      if not (is_crashed v) then begin
        incr stepped;
        (* Monomorphic sort key: sources are ints, so the polymorphic
           [compare] the original loop used is pure overhead here. *)
        let sorted =
          List.sort (fun (a, _) (b, _) -> Int.compare a b) current.(slot)
        in
        inbox_clear scratch;
        List.iter (fun (s, m) -> inbox_push scratch ~src:s m) sorted;
        (match profile with
        | Some p -> Profile.record_inbox p scratch.i_len
        | None -> ());
        let state, status =
          spec.step ~round:!round ~vertex:v states.(slot) scratch ~out
        in
        states.(slot) <- state;
        done_flags.(slot) <- (status = `Done);
        drain v
      end
    done;
    steps := !steps + !stepped;
    round_end t0 ~stepped:!stepped;
    if all_done () && !in_flight = 0 then finished := true
  done;
  (match profile with Some p -> Profile.run_end p | None -> ());
  (states, finish !round ~steps:!steps ~crashed:(crashed_now ()))

(* The event-driven path: a vertex is stepped only while it has
   pending messages or has not signalled [`Done]. Correct whenever the
   algorithm is *quiescent when done* — a vertex that returned [`Done]
   and then steps on an empty inbox changes nothing and stays [`Done]
   (every spec in this repository satisfies this; the equivalence
   suite checks it on the protocols that matter).

   Zero-allocation plumbing: two preallocated banks of per-vertex
   inbox buffers are swapped each round (this round's sends accumulate
   in the other bank), the vertex's own buffer is passed to [step]
   directly as its inbox view, and sends land in a reused outbox that
   is drained — validated, metered, traced, delivered — right after
   the step returns. Steady-state rounds therefore allocate nothing in
   the engine.

   With [par > 1] the per-round stepping fans out over a persistent
   domain pool: the vertex range is cut into contiguous shards, each
   shard steps its vertices appending sends to a per-shard outbox and
   a [(vertex, count)] segment index, and a serial merge then walks
   the shards in order — i.e. in ascending vertex id — performing
   every side effect the sequential loop would have performed, in the
   same order: message delivery into the next bank (so inbox insertion
   order is preserved), metric accumulation, congestion checks and
   trace [Send] emission. The parallel phase writes only disjoint
   per-vertex slots ([states], [done_flags], each vertex's own inbox
   buffer) plus per-shard scratch, and the pool barrier publishes
   those writes, so the result is bit-identical to the sequential loop
   for any shard count (GC-pressure metrics excepted: each domain owns
   its minor heap). The only observable difference is on error paths:
   a strict [Congest_violation] or a non-neighbor [Invalid_argument]
   is raised at merge time, after the whole round has been stepped,
   rather than mid-round. *)
let run_active ?max_rounds ?(strict = false) ?observer ?(trace = Trace.null)
    ?(par = 1) ?adversary ?profile ?frugal ?active ~model ~graph spec =
  let n = Grapho.Ugraph.n graph in
  let adversary = normalize_adversary adversary in
  (match adversary with Some a -> Adversary.reset a ~n | None -> ());
  (* [a] vertices actually run; [slot] indexes every engine array and
     equals the vertex id on a dense run, so the dense path costs one
     predictable branch per stepped vertex and nothing else. *)
  let sparse = active <> None in
  let act = match active with Some act -> act | None -> [||] in
  let a = if sparse then Array.length act else n in
  let pos = if sparse then slot_of_vertex ~n act else [||] in
  let par = max 1 (min par a) in
  let pool = if par > 1 then Some (Pool.get par) else None in
  (* Shard count actually used per round. *)
  let k = match pool with None -> 1 | Some p -> min par (Pool.size p) in
  let profiling = profile <> None in
  (match profile with
  | Some p ->
      Profile.run_begin p;
      if pool <> None then Profile.ensure_shards p k
  | None -> ());
  (* Per-shard scratch, allocated once and reused every round. *)
  let shard_out = Array.init k (fun _ -> outbox_create ()) in
  let shard_seg = Array.init k (fun _ -> seg_make ()) in
  let shard_stepped = Array.make k 0 in
  let shard_delta = Array.make k 0 in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 50 * (a + 5)
  in
  let done_flags = Array.make a false in
  (* Degree in the full graph is an upper bound on the induced degree,
     so the hint stays valid on sparse runs. *)
  let slot_hint s =
    Grapho.Ugraph.degree graph (if sparse then act.(s) else s)
  in
  let bank_a = Array.init a (fun s -> inbox_create ~hint:(slot_hint s) ()) in
  let bank_b = Array.init a (fun s -> inbox_create ~hint:(slot_hint s) ()) in
  let cur = ref bank_a and next = ref bank_b in
  let bandwidth = Model.bandwidth model in
  let pending = ref 0 in (* messages sitting in [next] *)
  let not_done = ref a in
  let round = ref 0 in
  let trace, tracing, _account, account_seg, finish, take_round, flush_round =
    make_accounting ?observer ?adversary ?profile ?frugal ~trace ~round
      ~strict ~graph ~measure:spec.measure ()
  in
  let crashed_now () =
    match adversary with None -> 0 | Some a -> Adversary.crashed_count a
  in
  let deliver =
    if not sparse then fun ~src ~dst payload ->
      incr pending;
      inbox_push !next.(dst) ~src payload
    else fun ~src ~dst payload ->
      let slot = pos.(dst) in
      if slot < 0 then
        invalid_arg
          (Printf.sprintf "Engine: vertex %d sent to frozen vertex %d" src
             dst);
      incr pending;
      inbox_push !next.(slot) ~src payload
  in
  let account_seg src dsts msgs ~lo ~hi =
    account_seg ~bandwidth ~deliver src dsts msgs ~lo ~hi
  in
  let out = outbox_create ~hint:(Grapho.Ugraph.max_degree graph) () in
  let drain src =
    account_seg src out.o_dst out.o_msg ~lo:0 ~hi:out.o_len;
    out.o_len <- 0
  in
  let steps = ref 0 in
  let round_end t0 ~stepped =
    flush_round ();
    let t1 = if tracing || profiling then now_ns () else 0 in
    (match profile with
    | Some p -> Profile.round_span p ~round:!round ~t0 ~t1
    | None -> ());
    if tracing then
      Trace.emit trace
        (Trace.Round_end
           (take_round ~stepped ~vdone:(a - !not_done)
              ~crashed:(crashed_now ()) ~elapsed_ns:(t1 - t0) !round))
  in
  (* Round 0: init everyone (always sequential; active vertices only
     on a sparse run). *)
  if tracing then Trace.emit trace (Trace.Round_begin 0);
  let t0 = if tracing || profiling then now_ns () else 0 in
  let states =
    if sparse then init_states_sparse ~n ~graph ~spec ~act ~pos ~out ~drain
    else init_states ~n ~graph ~spec ~out ~drain
  in
  steps := a;
  round_end t0 ~stepped:a;
  let finished = ref (a = 0) in
  while not !finished do
    incr round;
    if !round > max_rounds then
      failwith
        (Printf.sprintf "Engine.run: no termination within %d rounds"
           max_rounds);
    if tracing then Trace.emit trace (Trace.Round_begin !round);
    let t0 = if tracing || profiling then now_ns () else 0 in
    (* Swap banks: this round's sends accumulate in the other bank and
       arrive next round. *)
    let t = !cur in
    cur := !next;
    next := t;
    pending := 0;
    let bank = !cur in
    (* Fault activation happens on the calling domain, before any
       stepping (sequential or parallel): a crash-stopped vertex's
       pending inbox is destroyed and it is flagged done, so the step
       condition below never wakes it again (deliveries to it are
       dropped at [consult] time). The pool barrier publishes these
       writes to the shards, and the order is identical for any shard
       count. *)
    (match adversary with
    | None -> ()
    | Some adv ->
        Adversary.begin_round adv ~round:!round (fun kind ->
            (match kind with
            | Trace.Crash v ->
                (* Slot-indexed engine arrays: a crash at a frozen
                   vertex of a sparse run touches no engine state. *)
                let slot = if sparse then pos.(v) else v in
                if slot >= 0 then begin
                  bank.(slot).i_len <- 0;
                  if not done_flags.(slot) then begin
                    done_flags.(slot) <- true;
                    decr not_done
                  end
                end
            | Trace.Cut _ | Trace.Restore _ -> ());
            if tracing then
              Trace.emit trace (Trace.Fault_injected { round = !round; kind })));
    let stepped = ref 0 in
    (match pool with
    | None ->
        for slot = 0 to a - 1 do
          let b = bank.(slot) in
          if b.i_len > 0 || not done_flags.(slot) then begin
            let v = if sparse then Array.unsafe_get act slot else slot in
            incr stepped;
            (match profile with
            | Some p -> Profile.record_inbox p b.i_len
            | None -> ());
            let state, status =
              spec.step ~round:!round ~vertex:v states.(slot) b ~out
            in
            b.i_len <- 0;
            states.(slot) <- state;
            (match status with
            | `Done -> if not done_flags.(slot) then begin
                done_flags.(slot) <- true;
                decr not_done
              end
            | `Continue -> if done_flags.(slot) then begin
                done_flags.(slot) <- false;
                incr not_done
              end);
            drain v
          end
        done
    | Some pool ->
        let r = !round in
        (* Parallel phase: step shards concurrently; touch only
           disjoint per-vertex slots and per-shard scratch. Shards cut
           the slot range, which on a sparse run is the ascending
           active order, so the serial merge below still replays side
           effects in ascending vertex id. *)
        Pool.run pool ~shards:k ~n:a (fun ~lo ~hi ~shard ->
            (* Shards stamp their own clocks and record inbox sizes
               into disjoint profile slots; the merge below flushes
               them on the calling thread. *)
            (match profile with
            | Some p -> Profile.shard_begin p ~shard
            | None -> ());
            let sout = shard_out.(shard) in
            sout.o_len <- 0;
            let seg = shard_seg.(shard) in
            seg.s_len <- 0;
            let st = ref 0 in
            let delta = ref 0 in
            for slot = lo to hi - 1 do
              let b = bank.(slot) in
              if b.i_len > 0 || not done_flags.(slot) then begin
                let v = if sparse then Array.unsafe_get act slot else slot in
                incr st;
                (match profile with
                | Some p -> Profile.record_shard_inbox p ~shard b.i_len
                | None -> ());
                let before = sout.o_len in
                let state, status =
                  spec.step ~round:r ~vertex:v states.(slot) b ~out:sout
                in
                b.i_len <- 0;
                states.(slot) <- state;
                (match status with
                | `Done ->
                    if not done_flags.(slot) then begin
                      done_flags.(slot) <- true;
                      decr delta
                    end
                | `Continue ->
                    if done_flags.(slot) then begin
                      done_flags.(slot) <- false;
                      incr delta
                    end);
                (* Draining an empty outbox is a no-op, so vertices
                   that sent nothing can be skipped in the merge. The
                   segment records the global vertex id: the merge's
                   accounting validates sends against the full
                   graph. *)
                let cnt = sout.o_len - before in
                if cnt > 0 then seg_push seg v cnt
              end
            done;
            shard_stepped.(shard) <- !st;
            shard_delta.(shard) <- !delta;
            (match profile with
            | Some p -> Profile.shard_end p ~shard
            | None -> ()));
        let merge_t0 =
          match profile with Some _ -> now_ns () | None -> 0
        in
        (* Serial merge, in ascending vertex id (shards are contiguous
           ascending ranges and each shard outbox is the in-order
           concatenation of its vertices' sends): exactly the
           side-effect order of the sequential loop. *)
        for s = 0 to k - 1 do
          stepped := !stepped + shard_stepped.(s);
          not_done := !not_done + shard_delta.(s);
          let sout = shard_out.(s) in
          let seg = shard_seg.(s) in
          let off = ref 0 in
          for i = 0 to seg.s_len - 1 do
            let v = seg.s_v.(i) in
            let stop = !off + seg.s_cnt.(i) in
            account_seg v sout.o_dst sout.o_msg ~lo:!off ~hi:stop;
            off := stop
          done;
          sout.o_len <- 0;
          seg.s_len <- 0
        done;
        match profile with
        | Some p ->
            Profile.merge_span p ~round:!round ~shards:k ~t0:merge_t0
              ~t1:(now_ns ())
        | None -> ());
    steps := !steps + !stepped;
    round_end t0 ~stepped:!stepped;
    if !not_done = 0 && !pending = 0 then finished := true
  done;
  (match profile with Some p -> Profile.run_end p | None -> ());
  (states, finish !round ~steps:!steps ~crashed:(crashed_now ()))

(* Benchmarking shim: identical results and scheduling, pre-mailbox
   allocation profile. Each step first materializes the [(src, msg)]
   list inbox the pre-mailbox engine handed to protocols (one tuple
   and one cons cell per delivered message, plus the per-step sort),
   and every send goes through a send-record list rebuilt from a
   scratch outbox (one 2-field record and one cons cell per message)
   before being replayed into the engine's real outbox. This is the
   "before" side of the allocation A/B in the perf trajectory. *)
type 'msg legacy_send = { ls_dst : int; ls_payload : 'msg }

let legacy_cost_spec (spec : ('s, 'm) spec) : ('s, 'm) spec =
  let scratch = outbox_create () in
  let collect () =
    let acc = ref [] in
    outbox_iter
      (fun ~dst m -> acc := { ls_dst = dst; ls_payload = m } :: !acc)
      scratch;
    outbox_clear scratch;
    List.rev !acc
  in
  let replay out sends =
    List.iter (fun s -> emit out ~dst:s.ls_dst s.ls_payload) sends
  in
  {
    init =
      (fun ~n ~vertex ~neighbors ~out ->
        let st = spec.init ~n ~vertex ~neighbors ~out:scratch in
        replay out (collect ());
        st);
    step =
      (fun ~round ~vertex st inbox ~out ->
        let lst =
          inbox_fold (fun acc ~src m -> (src, m) :: acc) [] inbox
        in
        let lst = List.sort (fun (a, _) (b, _) -> compare a b) lst in
        ignore (Sys.opaque_identity lst);
        let st', status = spec.step ~round ~vertex st inbox ~out:scratch in
        replay out (collect ());
        (st', status));
    measure = spec.measure;
  }

let run ?max_rounds ?strict ?observer ?trace ?(sched = `Active) ?par ?adversary
    ?profile ?frugal ?active ~model ~graph spec =
  (match active with
  | None -> ()
  | Some _ ->
      validate_active ~n:(Grapho.Ugraph.n graph) active;
      (* Frugal keys per-edge suppression machines on the full graph
         and would silently mis-account against an induced subgraph —
         reject rather than guess a semantics.  The adversary, by
         contrast, composes: its coin stream is consulted once per
         delivered message in merge order (unchanged by sparsity),
         fraction crashes resolve over the full n, and a crash landing
         on a frozen vertex is a no-op (the vertex was never running). *)
      if frugal <> None then
        invalid_arg "Engine: ?active is incompatible with ?frugal");
  match sched with
  | `Naive ->
      (* The reference path stays single-domain by design: it is the
         thing the parallel path is diffed against. *)
      run_naive ?max_rounds ?strict ?observer ?trace ?adversary ?profile
        ?frugal ?active ~model ~graph spec
  | `Active ->
      run_active ?max_rounds ?strict ?observer ?trace ?par ?adversary ?profile
        ?frugal ?active ~model ~graph spec
  | `Active_legacy_cost ->
      (* [scratch] in the shim is shared across vertices, so this
         variant must stay single-domain; it exists for the bench
         binary's allocation A/B, not for parallel runs. *)
      run_active ?max_rounds ?strict ?observer ?trace ?adversary ?profile
        ?frugal ?active ~model ~graph (legacy_cost_spec spec)
