type 'msg send = { dst : int; payload : 'msg }

type metrics = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_message_bits : int;
  congest_violations : int;
}

type sched = [ `Active | `Naive ]

type ('state, 'msg) spec = {
  init :
    n:int -> vertex:int -> neighbors:int array ->
    'state * 'msg send list;
  step :
    round:int -> vertex:int -> 'state -> (int * 'msg) list ->
    'state * 'msg send list * [ `Continue | `Done ];
  measure : 'msg -> int;
}

exception Congest_violation of { src : int; dst : int; bits : int }

(* ------------------------------------------------------------------ *)
(* Insertion-ordered growable inboxes.

   Vertices are stepped in ascending id order and a vertex emits at
   most its outbox once per round, so appending each delivery to the
   destination's buffer yields an inbox already sorted by source — the
   per-round [List.sort] of the naive path comes for free. Buffers are
   preallocated once and reused across rounds (two banks, swapped), so
   the steady state allocates nothing but the inbox lists handed to
   [step]. *)

type 'msg buf = { mutable data : (int * 'msg) array; mutable len : int }

let buf_make () = { data = [||]; len = 0 }

let buf_push b x =
  let cap = Array.length b.data in
  if b.len = cap then begin
    let data = Array.make (max 4 (2 * cap)) x in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let buf_to_list b =
  let rec go i acc = if i < 0 then acc else go (i - 1) (b.data.(i) :: acc) in
  go (b.len - 1) []

(* ------------------------------------------------------------------ *)

let make_accounting ?observer ~strict ~graph ~measure () =
  let messages = ref 0 in
  let total_bits = ref 0 in
  let max_message_bits = ref 0 in
  let congest_violations = ref 0 in
  let account ~bandwidth ~deliver src outbox =
    List.iter
      (fun { dst; payload } ->
        if not (Grapho.Ugraph.mem_edge graph src dst) then
          invalid_arg
            (Printf.sprintf "Engine: vertex %d sent to non-neighbor %d" src
               dst);
        let bits = measure payload in
        (match observer with
        | Some f -> f ~src ~dst ~bits
        | None -> ());
        incr messages;
        total_bits := !total_bits + bits;
        if bits > !max_message_bits then max_message_bits := bits;
        (match bandwidth with
        | Some limit when bits > limit ->
            if strict then raise (Congest_violation { src; dst; bits })
            else incr congest_violations
        | _ -> ());
        deliver ~src ~dst payload)
      outbox
  in
  let finish rounds =
    {
      rounds;
      messages = !messages;
      total_bits = !total_bits;
      max_message_bits = !max_message_bits;
      congest_violations = !congest_violations;
    }
  in
  (account, finish)

(* The retained reference path: step every vertex every round, sort
   every inbox. Kept verbatim (modulo the shared accounting) so the
   equivalence suite can diff the active scheduler against it. *)
let run_naive ?max_rounds ?(strict = false) ?observer ~model ~graph spec =
  let n = Grapho.Ugraph.n graph in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 50 * (n + 5)
  in
  let done_flags = Array.make n false in
  let inboxes = Array.make n [] in
  let bandwidth = Model.bandwidth model in
  let in_flight = ref 0 in
  let account, finish =
    make_accounting ?observer ~strict ~graph ~measure:spec.measure ()
  in
  let deliver ~src ~dst payload =
    incr in_flight;
    inboxes.(dst) <- (src, payload) :: inboxes.(dst)
  in
  let account src outbox = account ~bandwidth ~deliver src outbox in
  (* Round 0: init everyone. *)
  let initial =
    Array.init n (fun v ->
        spec.init ~n ~vertex:v ~neighbors:(Grapho.Ugraph.neighbors graph v))
  in
  let states = Array.map fst initial in
  Array.iteri (fun v (_, outbox) -> account v outbox) initial;
  let round = ref 0 in
  let all_done () = Array.for_all (fun f -> f) done_flags in
  let finished = ref (n = 0) in
  while not !finished do
    incr round;
    if !round > max_rounds then
      failwith
        (Printf.sprintf "Engine.run: no termination within %d rounds"
           max_rounds);
    (* Snapshot and clear inboxes so this round's sends arrive next
       round. *)
    let current = Array.copy inboxes in
    Array.fill inboxes 0 n [];
    in_flight := 0;
    for v = 0 to n - 1 do
      let inbox =
        List.sort (fun (a, _) (b, _) -> compare a b) current.(v)
      in
      let state, outbox, status = spec.step ~round:!round ~vertex:v
          states.(v) inbox
      in
      states.(v) <- state;
      done_flags.(v) <- (status = `Done);
      account v outbox
    done;
    if all_done () && !in_flight = 0 then finished := true
  done;
  (states, finish !round)

(* The event-driven path: a vertex is stepped only while it has
   pending messages or has not signalled [`Done]. Correct whenever the
   algorithm is *quiescent when done* — a vertex that returned [`Done]
   and then steps on an empty inbox changes nothing and stays [`Done]
   (every spec in this repository satisfies this; the equivalence
   suite checks it on the protocols that matter). *)
let run_active ?max_rounds ?(strict = false) ?observer ~model ~graph spec =
  let n = Grapho.Ugraph.n graph in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 50 * (n + 5)
  in
  let done_flags = Array.make n false in
  let bank_a = Array.init n (fun _ -> buf_make ()) in
  let bank_b = Array.init n (fun _ -> buf_make ()) in
  let cur = ref bank_a and next = ref bank_b in
  let bandwidth = Model.bandwidth model in
  let pending = ref 0 in (* messages sitting in [next] *)
  let not_done = ref n in
  let account, finish =
    make_accounting ?observer ~strict ~graph ~measure:spec.measure ()
  in
  let deliver ~src ~dst payload =
    incr pending;
    buf_push !next.(dst) (src, payload)
  in
  let account src outbox = account ~bandwidth ~deliver src outbox in
  (* Round 0: init everyone. *)
  let initial =
    Array.init n (fun v ->
        spec.init ~n ~vertex:v ~neighbors:(Grapho.Ugraph.neighbors graph v))
  in
  let states = Array.map fst initial in
  Array.iteri (fun v (_, outbox) -> account v outbox) initial;
  let round = ref 0 in
  let finished = ref (n = 0) in
  while not !finished do
    incr round;
    if !round > max_rounds then
      failwith
        (Printf.sprintf "Engine.run: no termination within %d rounds"
           max_rounds);
    (* Swap banks: this round's sends accumulate in the other bank and
       arrive next round. *)
    let t = !cur in
    cur := !next;
    next := t;
    pending := 0;
    let bank = !cur in
    for v = 0 to n - 1 do
      let b = bank.(v) in
      if b.len > 0 || not done_flags.(v) then begin
        let inbox = buf_to_list b in
        b.len <- 0;
        let state, outbox, status = spec.step ~round:!round ~vertex:v
            states.(v) inbox
        in
        states.(v) <- state;
        (match status with
        | `Done -> if not done_flags.(v) then begin
            done_flags.(v) <- true;
            decr not_done
          end
        | `Continue -> if done_flags.(v) then begin
            done_flags.(v) <- false;
            incr not_done
          end);
        account v outbox
      end
    done;
    if !not_done = 0 && !pending = 0 then finished := true
  done;
  (states, finish !round)

let run ?max_rounds ?strict ?observer ?(sched = `Active) ~model ~graph spec =
  match sched with
  | `Naive -> run_naive ?max_rounds ?strict ?observer ~model ~graph spec
  | `Active -> run_active ?max_rounds ?strict ?observer ~model ~graph spec
