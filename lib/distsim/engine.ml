type 'msg send = { dst : int; payload : 'msg }

type metrics = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_message_bits : int;
  congest_violations : int;
  steps : int;
}

type sched = [ `Active | `Naive ]

type ('state, 'msg) spec = {
  init :
    n:int -> vertex:int -> neighbors:int array ->
    'state * 'msg send list;
  step :
    round:int -> vertex:int -> 'state -> (int * 'msg) list ->
    'state * 'msg send list * [ `Continue | `Done ];
  measure : 'msg -> int;
}

exception Congest_violation of { src : int; dst : int; bits : int }

(* ------------------------------------------------------------------ *)
(* Insertion-ordered growable inboxes.

   Vertices are stepped in ascending id order and a vertex emits at
   most its outbox once per round, so appending each delivery to the
   destination's buffer yields an inbox already sorted by source — the
   per-round [List.sort] of the naive path comes for free. Buffers are
   preallocated once and reused across rounds (two banks, swapped), so
   the steady state allocates nothing but the inbox lists handed to
   [step]. *)

type 'msg buf = { mutable data : (int * 'msg) array; mutable len : int }

let buf_make () = { data = [||]; len = 0 }

let buf_push b x =
  let cap = Array.length b.data in
  if b.len = cap then begin
    let data = Array.make (max 4 (2 * cap)) x in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let buf_to_list b =
  let rec go i acc = if i < 0 then acc else go (i - 1) (b.data.(i) :: acc) in
  go (b.len - 1) []

(* ------------------------------------------------------------------ *)

(* The legacy [observer] is a thin wrapper over a [Send]-only trace
   sink; the engine internally folds it into the sink it traces to. *)
let effective_trace ?observer trace =
  match observer with
  | None -> trace
  | Some f -> Trace.tee (Trace.of_observer f) trace

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Message accounting shared by both schedulers. [round] is the
   engine's current-round cell (0 during init), read when stamping
   [Send] events. [take_round] snapshots and resets the per-round
   deltas for a [Round_end] event; it is only called when tracing, and
   the per-round counters are only maintained when tracing, so the
   [Trace.null] path does exactly the work the untraced engine did. *)
let make_accounting ?observer ~trace ~round ~strict ~graph ~measure () =
  let trace = effective_trace ?observer trace in
  let tracing = not (Trace.is_null trace) in
  let wants_sends = Trace.wants_sends trace in
  let messages = ref 0 in
  let total_bits = ref 0 in
  let max_message_bits = ref 0 in
  let congest_violations = ref 0 in
  (* Per-round deltas (tracing only). *)
  let r_messages = ref 0 in
  let r_bits = ref 0 in
  let r_max_bits = ref 0 in
  let r_violations = ref 0 in
  let account ~bandwidth ~deliver src outbox =
    List.iter
      (fun { dst; payload } ->
        if not (Grapho.Ugraph.mem_edge graph src dst) then
          invalid_arg
            (Printf.sprintf "Engine: vertex %d sent to non-neighbor %d" src
               dst);
        let bits = measure payload in
        if tracing then begin
          incr r_messages;
          r_bits := !r_bits + bits;
          if bits > !r_max_bits then r_max_bits := bits;
          if wants_sends then
            Trace.emit trace (Trace.Send { src; dst; bits; round = !round })
        end;
        incr messages;
        total_bits := !total_bits + bits;
        if bits > !max_message_bits then max_message_bits := bits;
        (match bandwidth with
        | Some limit when bits > limit ->
            if strict then raise (Congest_violation { src; dst; bits })
            else begin
              incr congest_violations;
              if tracing then incr r_violations
            end
        | _ -> ());
        deliver ~src ~dst payload)
      outbox
  in
  let finish rounds ~steps =
    {
      rounds;
      messages = !messages;
      total_bits = !total_bits;
      max_message_bits = !max_message_bits;
      congest_violations = !congest_violations;
      steps;
    }
  in
  let take_round ~stepped ~vdone ~elapsed_ns r =
    let stat =
      {
        Trace.round = r;
        messages = !r_messages;
        bits = !r_bits;
        max_bits = !r_max_bits;
        vertices_stepped = stepped;
        vertices_done = vdone;
        congest_violations = !r_violations;
        elapsed_ns;
      }
    in
    r_messages := 0;
    r_bits := 0;
    r_max_bits := 0;
    r_violations := 0;
    stat
  in
  (trace, tracing, account, finish, take_round)

(* The retained reference path: step every vertex every round, sort
   every inbox. Kept verbatim (modulo the shared accounting) so the
   equivalence suite can diff the active scheduler against it. *)
let run_naive ?max_rounds ?(strict = false) ?observer ?(trace = Trace.null)
    ~model ~graph spec =
  let n = Grapho.Ugraph.n graph in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 50 * (n + 5)
  in
  let done_flags = Array.make n false in
  let inboxes = Array.make n [] in
  let bandwidth = Model.bandwidth model in
  let in_flight = ref 0 in
  let round = ref 0 in
  let trace, tracing, account, finish, take_round =
    make_accounting ?observer ~trace ~round ~strict ~graph
      ~measure:spec.measure ()
  in
  let deliver ~src ~dst payload =
    incr in_flight;
    inboxes.(dst) <- (src, payload) :: inboxes.(dst)
  in
  let account src outbox = account ~bandwidth ~deliver src outbox in
  let steps = ref 0 in
  let count_done () =
    Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 done_flags
  in
  let round_end t0 ~stepped =
    if tracing then
      Trace.emit trace
        (Trace.Round_end
           (take_round ~stepped ~vdone:(count_done ())
              ~elapsed_ns:(now_ns () - t0) !round))
  in
  (* Round 0: init everyone. *)
  if tracing then Trace.emit trace (Trace.Round_begin 0);
  let t0 = if tracing then now_ns () else 0 in
  let initial =
    Array.init n (fun v ->
        spec.init ~n ~vertex:v ~neighbors:(Grapho.Ugraph.neighbors graph v))
  in
  let states = Array.map fst initial in
  Array.iteri (fun v (_, outbox) -> account v outbox) initial;
  steps := n;
  round_end t0 ~stepped:n;
  let all_done () = Array.for_all (fun f -> f) done_flags in
  let finished = ref (n = 0) in
  while not !finished do
    incr round;
    if !round > max_rounds then
      failwith
        (Printf.sprintf "Engine.run: no termination within %d rounds"
           max_rounds);
    if tracing then Trace.emit trace (Trace.Round_begin !round);
    let t0 = if tracing then now_ns () else 0 in
    (* Snapshot and clear inboxes so this round's sends arrive next
       round. *)
    let current = Array.copy inboxes in
    Array.fill inboxes 0 n [];
    in_flight := 0;
    for v = 0 to n - 1 do
      let inbox =
        List.sort (fun (a, _) (b, _) -> compare a b) current.(v)
      in
      let state, outbox, status = spec.step ~round:!round ~vertex:v
          states.(v) inbox
      in
      states.(v) <- state;
      done_flags.(v) <- (status = `Done);
      account v outbox
    done;
    steps := !steps + n;
    round_end t0 ~stepped:n;
    if all_done () && !in_flight = 0 then finished := true
  done;
  (states, finish !round ~steps:!steps)

(* The event-driven path: a vertex is stepped only while it has
   pending messages or has not signalled [`Done]. Correct whenever the
   algorithm is *quiescent when done* — a vertex that returned [`Done]
   and then steps on an empty inbox changes nothing and stays [`Done]
   (every spec in this repository satisfies this; the equivalence
   suite checks it on the protocols that matter).

   With [par > 1] the per-round stepping fans out over a persistent
   domain pool: the vertex range is cut into contiguous shards, each
   shard steps its vertices and buffers [(vertex, outbox)] pairs
   locally, and a serial merge then walks the shards in order —
   i.e. in ascending vertex id — performing every side effect the
   sequential loop would have performed, in the same order: message
   delivery into the next bank (so inbox insertion order is
   preserved), metric accumulation, congestion checks and trace [Send]
   emission. The parallel phase writes only disjoint per-vertex slots
   ([states], [done_flags], each vertex's own inbox buffer) plus
   per-shard scratch, and the pool barrier publishes those writes, so
   the result is bit-identical to the sequential loop for any shard
   count. The only observable difference is on error paths: a strict
   [Congest_violation] or a non-neighbor [Invalid_argument] is raised
   at merge time, after the whole round has been stepped, rather than
   mid-round. *)
let run_active ?max_rounds ?(strict = false) ?observer ?(trace = Trace.null)
    ?(par = 1) ~model ~graph spec =
  let n = Grapho.Ugraph.n graph in
  let par = max 1 (min par n) in
  let pool = if par > 1 then Some (Pool.get par) else None in
  (* Shard count actually used per round. *)
  let k = match pool with None -> 1 | Some p -> min par (Pool.size p) in
  (* Per-shard scratch, allocated once and reused every round. *)
  let shard_out = Array.init k (fun _ -> buf_make ()) in
  let shard_stepped = Array.make k 0 in
  let shard_delta = Array.make k 0 in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 50 * (n + 5)
  in
  let done_flags = Array.make n false in
  let bank_a = Array.init n (fun _ -> buf_make ()) in
  let bank_b = Array.init n (fun _ -> buf_make ()) in
  let cur = ref bank_a and next = ref bank_b in
  let bandwidth = Model.bandwidth model in
  let pending = ref 0 in (* messages sitting in [next] *)
  let not_done = ref n in
  let round = ref 0 in
  let trace, tracing, account, finish, take_round =
    make_accounting ?observer ~trace ~round ~strict ~graph
      ~measure:spec.measure ()
  in
  let deliver ~src ~dst payload =
    incr pending;
    buf_push !next.(dst) (src, payload)
  in
  let account src outbox = account ~bandwidth ~deliver src outbox in
  let steps = ref 0 in
  let round_end t0 ~stepped =
    if tracing then
      Trace.emit trace
        (Trace.Round_end
           (take_round ~stepped ~vdone:(n - !not_done)
              ~elapsed_ns:(now_ns () - t0) !round))
  in
  (* Round 0: init everyone. *)
  if tracing then Trace.emit trace (Trace.Round_begin 0);
  let t0 = if tracing then now_ns () else 0 in
  let initial =
    Array.init n (fun v ->
        spec.init ~n ~vertex:v ~neighbors:(Grapho.Ugraph.neighbors graph v))
  in
  let states = Array.map fst initial in
  Array.iteri (fun v (_, outbox) -> account v outbox) initial;
  steps := n;
  round_end t0 ~stepped:n;
  let finished = ref (n = 0) in
  while not !finished do
    incr round;
    if !round > max_rounds then
      failwith
        (Printf.sprintf "Engine.run: no termination within %d rounds"
           max_rounds);
    if tracing then Trace.emit trace (Trace.Round_begin !round);
    let t0 = if tracing then now_ns () else 0 in
    (* Swap banks: this round's sends accumulate in the other bank and
       arrive next round. *)
    let t = !cur in
    cur := !next;
    next := t;
    pending := 0;
    let bank = !cur in
    let stepped = ref 0 in
    (match pool with
    | None ->
        for v = 0 to n - 1 do
          let b = bank.(v) in
          if b.len > 0 || not done_flags.(v) then begin
            incr stepped;
            let inbox = buf_to_list b in
            b.len <- 0;
            let state, outbox, status = spec.step ~round:!round ~vertex:v
                states.(v) inbox
            in
            states.(v) <- state;
            (match status with
            | `Done -> if not done_flags.(v) then begin
                done_flags.(v) <- true;
                decr not_done
              end
            | `Continue -> if done_flags.(v) then begin
                done_flags.(v) <- false;
                incr not_done
              end);
            account v outbox
          end
        done
    | Some pool ->
        let r = !round in
        (* Parallel phase: step shards concurrently; touch only
           disjoint per-vertex slots and per-shard scratch. *)
        Pool.run pool ~shards:k ~n (fun ~lo ~hi ~shard ->
            let out = shard_out.(shard) in
            out.len <- 0;
            let st = ref 0 in
            let delta = ref 0 in
            for v = lo to hi - 1 do
              let b = bank.(v) in
              if b.len > 0 || not done_flags.(v) then begin
                incr st;
                let inbox = buf_to_list b in
                b.len <- 0;
                let state, outbox, status =
                  spec.step ~round:r ~vertex:v states.(v) inbox
                in
                states.(v) <- state;
                (match status with
                | `Done ->
                    if not done_flags.(v) then begin
                      done_flags.(v) <- true;
                      decr delta
                    end
                | `Continue ->
                    if done_flags.(v) then begin
                      done_flags.(v) <- false;
                      incr delta
                    end);
                (* [account v []] is a no-op, so empty outboxes can be
                   skipped without changing anything observable. *)
                if outbox <> [] then buf_push out (v, outbox)
              end
            done;
            shard_stepped.(shard) <- !st;
            shard_delta.(shard) <- !delta);
        (* Serial merge, in ascending vertex id (shards are contiguous
           ascending ranges): exactly the side-effect order of the
           sequential loop. *)
        for s = 0 to k - 1 do
          stepped := !stepped + shard_stepped.(s);
          not_done := !not_done + shard_delta.(s);
          let out = shard_out.(s) in
          for i = 0 to out.len - 1 do
            let v, outbox = out.data.(i) in
            account v outbox
          done;
          out.len <- 0
        done);
    steps := !steps + !stepped;
    round_end t0 ~stepped:!stepped;
    if !not_done = 0 && !pending = 0 then finished := true
  done;
  (states, finish !round ~steps:!steps)

let run ?max_rounds ?strict ?observer ?trace ?(sched = `Active) ?par ~model
    ~graph spec =
  match sched with
  | `Naive ->
      (* The reference path stays single-domain by design: it is the
         thing the parallel path is diffed against. *)
      run_naive ?max_rounds ?strict ?observer ?trace ~model ~graph spec
  | `Active ->
      run_active ?max_rounds ?strict ?observer ?trace ?par ~model ~graph spec
