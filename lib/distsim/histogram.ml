(* Allocation-free log₂-binned integer histograms.

   Bin 0 holds the value 0 (non-positive values clamp there); bin
   [b >= 1] holds the range [2^(b-1), 2^b). 63 bins cover every
   OCaml int. [record] touches only preallocated scalar fields and
   the fixed bins array, so steady-state recording allocates
   nothing — the profiler can record per-message payload sizes on
   the engine's hot path without disturbing the GC guards.

   Everything a histogram stores (count/sum/min/max/bins) is an
   order-independent aggregate, so merging per-shard histograms in
   any order yields the same result as recording the concatenated
   stream sequentially: histograms are deterministic across shard
   counts even though the recording interleaving is not. *)

type t = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;  (* max_int when empty *)
  mutable vmax : int;  (* min_int when empty *)
  bins : int array;
}

let num_bins = 63

let create () =
  { count = 0; sum = 0; vmin = max_int; vmax = min_int; bins = Array.make num_bins 0 }

let clear h =
  h.count <- 0;
  h.sum <- 0;
  h.vmin <- max_int;
  h.vmax <- min_int;
  Array.fill h.bins 0 num_bins 0

let bin_index v =
  if v <= 0 then 0
  else begin
    (* Number of significant bits of [v]: 1 -> bin 1, 2..3 -> bin 2,
       4..7 -> bin 3, i.e. bin b covers [2^(b-1), 2^b). *)
    let b = ref 0 in
    let x = ref v in
    while !x <> 0 do
      incr b;
      x := !x lsr 1
    done;
    !b
  end

let bin_lo b = if b <= 0 then 0 else 1 lsl (b - 1)
let bin_hi b = if b <= 0 then 0 else (1 lsl b) - 1

let record h v =
  let v = if v < 0 then 0 else v in
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  let b = bin_index v in
  h.bins.(b) <- h.bins.(b) + 1

let count h = h.count
let sum h = h.sum
let bin_count h b = h.bins.(b)
let min_value h = if h.count = 0 then 0 else h.vmin
let max_value h = if h.count = 0 then 0 else h.vmax
let mean h = if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count

let merge_into ~into src =
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax;
  for b = 0 to num_bins - 1 do
    into.bins.(b) <- into.bins.(b) + src.bins.(b)
  done

let merge a b =
  let h = create () in
  merge_into ~into:h a;
  merge_into ~into:h b;
  h

let equal a b =
  a.count = b.count && a.sum = b.sum && a.vmin = b.vmin && a.vmax = b.vmax
  && a.bins = b.bins

(* Percentile estimate by rank walk: find the bin holding the
   element of rank ceil(p * count) and interpolate linearly across
   the bin's clamped value range. The clamp (to the recorded
   min/max) makes single-bin and single-value histograms exact, and
   monotonicity in [p] holds because bin ranges are disjoint and
   ascending while the within-bin estimate is nondecreasing in the
   rank. *)
let percentile h p =
  if h.count = 0 then 0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
    let rank =
      let r = int_of_float (ceil (p *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let b = ref 0 in
    let cum = ref h.bins.(0) in
    while !cum < rank do
      incr b;
      cum := !cum + h.bins.(!b)
    done;
    let in_bin = h.bins.(!b) in
    let before = !cum - in_bin in
    let within = rank - before in (* 1 .. in_bin *)
    let lo =
      let l = bin_lo !b in
      if h.vmin > l then h.vmin else l
    in
    let hi =
      let u = bin_hi !b in
      if h.vmax < u then h.vmax else u
    in
    if in_bin <= 1 || hi <= lo then lo
    else lo + (hi - lo) * (within - 1) / (in_bin - 1)
  end

let pp_summary ppf h =
  if h.count = 0 then Format.fprintf ppf "empty"
  else
    Format.fprintf ppf "n=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f"
      h.count (min_value h) (percentile h 0.5) (percentile h 0.9)
      (percentile h 0.99) (max_value h) (mean h)
