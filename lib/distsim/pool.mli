(** A persistent pool of worker domains for data-parallel loops.

    The round engine's inner loop is embarrassingly parallel within a
    round — each vertex reads only its own state and inbox — but
    spawning domains is far too expensive to do per round (about a
    quarter of a millisecond each, against rounds that often finish in
    microseconds). This pool spawns its workers {e once} and then
    hands them index ranges through a mutex/condition barrier, so the
    steady-state cost of a parallel round is two broadcasts and a few
    cache-line bounces, not a [Domain.spawn].

    Built on stdlib [Domain] / [Mutex] / [Condition] only; no
    dependencies beyond what OCaml 5 ships. *)

type t

val create : int -> t
(** [create d] spawns [d - 1] worker domains (the caller's domain is
    the [d]-th worker during {!run}), for a total parallelism of
    [max 1 d]. *)

val size : t -> int
(** Total parallelism: the number of shards {!run} can execute
    concurrently, including the calling domain. *)

val run : t -> shards:int -> n:int -> (lo:int -> hi:int -> shard:int -> unit) -> unit
(** [run pool ~shards ~n f] splits the index range [0, n) into
    [shards] contiguous slices ([shards] is clamped to
    [1 .. size pool]) and executes [f ~lo ~hi ~shard] for each slice
    [\[lo, hi)] concurrently — shard 0 on the calling domain, the rest
    on pool workers. Returns only once every shard has finished (a
    full barrier). If any shard raises, the exception is re-raised in
    the caller after the barrier (if several raise, one of them is
    reported). With [shards <= 1] the body runs inline on the calling
    domain with no synchronization at all.

    The body must confine its writes to disjoint data per shard;
    the barrier provides the happens-before edge that makes each
    shard's writes visible to the caller afterwards. Not reentrant:
    [f] must not call {!run} on the same pool. *)

val shutdown : t -> unit
(** Joins the worker domains. The pool must not be used afterwards.
    Idempotent. *)

val get : int -> t
(** [get d] returns a process-global pool of total parallelism at
    least [d], creating or growing it on first need and registering an
    [at_exit] that joins the workers. Repeated calls with
    non-increasing [d] reuse the same pool, so the engine can say
    [Pool.get par] on every run without respawning anything. Not
    thread-safe against concurrent [get] from multiple domains (the
    engine only calls it from the main domain). *)
