(* Seeded deterministic network adversary. See adversary.mli. *)

module Rng = Grapho.Rng

type verdict = Deliver | Duplicate | Drop of Trace.drop_reason

type t = {
  seed : int;
  drop_p : float;
  dup_p : float;
  crash_rounds : (int * int list) list;
      (* round -> vertices to crash there; rounds ascending, vertex
         lists ascending and duplicate-free. *)
  cut_list : ((int * int) * (int * int)) list;
      (* ((u, v) with u < v, (from_round, upto_round)). *)
  schedule_empty : bool;
  (* --- per-run mutable state, rebuilt by [reset] --- *)
  mutable n : int;
  mutable crashed : bool array;
  mutable crashed_count : int;
  mutable rng : Rng.t;
  mutable cuts : (int, int * int) Hashtbl.t;
      (* key [min*n + max] -> (from_round, upto_round). Empty when the
         schedule has no cuts, so [consult] can skip the lookup. *)
  mutable cuts_any : bool;
  mutable round : int;
}

let norm_edge (u, v) = if u <= v then (u, v) else (v, u)

let make ?(seed = 0) ?(drop_p = 0.0) ?(dup_p = 0.0) ?(crashes = [])
    ?(cuts = []) () =
  if not (drop_p >= 0.0 && drop_p < 1.0) then
    invalid_arg "Adversary.make: drop_p must lie in [0, 1)";
  if not (dup_p >= 0.0 && dup_p < 1.0) then
    invalid_arg "Adversary.make: dup_p must lie in [0, 1)";
  (* Group crashes by round (clamped >= 1), dedup vertices. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r, v) ->
      let r = max 1 r in
      let cur = try Hashtbl.find tbl r with Not_found -> [] in
      if not (List.mem v cur) then Hashtbl.replace tbl r (v :: cur))
    crashes;
  let crash_rounds =
    Hashtbl.fold (fun r vs acc -> (r, List.sort compare vs) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let cut_list =
    List.map
      (fun (e, (from_r, upto_r)) -> (norm_edge e, (max 1 from_r, upto_r)))
      cuts
  in
  let schedule_empty =
    drop_p = 0.0 && dup_p = 0.0 && crash_rounds = [] && cut_list = []
  in
  {
    seed;
    drop_p;
    dup_p;
    crash_rounds;
    cut_list;
    schedule_empty;
    n = 0;
    crashed = [||];
    crashed_count = 0;
    rng = Rng.create seed;
    cuts = Hashtbl.create 1;
    cuts_any = cut_list <> [];
    round = 0;
  }

let has_faults t = not t.schedule_empty

let reset t ~n =
  t.n <- n;
  t.crashed <- Array.make (max n 1) false;
  t.crashed_count <- 0;
  t.rng <- Rng.create t.seed;
  t.round <- 0;
  let cuts = Hashtbl.create (max 1 (List.length t.cut_list)) in
  List.iter
    (fun ((u, v), window) ->
      if u >= 0 && v < n then Hashtbl.replace cuts ((u * n) + v) window)
    t.cut_list;
  t.cuts <- cuts;
  t.cuts_any <- Hashtbl.length cuts > 0

let begin_round t ~round f =
  t.round <- round;
  (match List.assoc_opt round t.crash_rounds with
  | None -> ()
  | Some vs ->
      List.iter
        (fun v ->
          if v >= 0 && v < t.n && not t.crashed.(v) then begin
            t.crashed.(v) <- true;
            t.crashed_count <- t.crashed_count + 1;
            f (Trace.Crash v)
          end)
        vs);
  if t.cuts_any then
    List.iter
      (fun ((u, v), (from_r, upto_r)) ->
        if u >= 0 && v < t.n then begin
          if from_r = round then f (Trace.Cut (u, v));
          if upto_r <> max_int && upto_r + 1 = round then
            f (Trace.Restore (u, v))
        end)
      t.cut_list

let cut_active t ~src ~dst =
  t.cuts_any
  &&
  let u, v = norm_edge (src, dst) in
  match Hashtbl.find_opt t.cuts ((u * t.n) + v) with
  | None -> false
  | Some (from_r, upto_r) -> t.round >= from_r && t.round <= upto_r

let consult t ~src ~dst =
  if t.crashed.(src) || t.crashed.(dst) then Drop Trace.Dropped_crashed
  else if cut_active t ~src ~dst then Drop Trace.Dropped_cut
  else if t.drop_p > 0.0 && Rng.float t.rng 1.0 < t.drop_p then
    Drop Trace.Dropped_random
  else if t.dup_p > 0.0 && Rng.float t.rng 1.0 < t.dup_p then Duplicate
  else Deliver

(* State-only view of [consult]'s first two checks: crash/cut verdicts
   without touching the coin stream, for callers (the engine's frugal
   end-of-round sweep) that must not perturb the drop/duplicate
   sequence. *)
let blocks t ~src ~dst =
  if t.crashed.(src) || t.crashed.(dst) then Some Trace.Dropped_crashed
  else if cut_active t ~src ~dst then Some Trace.Dropped_cut
  else None

let is_crashed t v = v >= 0 && v < t.n && t.crashed.(v)
let crashed_count t = t.crashed_count

let crashed_list t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if t.crashed.(v) then acc := v :: !acc
  done;
  !acc
