(** Small reference CONGEST algorithms: engine exercisers and the
    workload for the two-party simulation harness. *)

val flood_min_id :
  ?model:Model.t ->
  ?par:int ->
  ?frugal:Frugal.t ->
  Grapho.Ugraph.t ->
  int array * Engine.metrics
(** Every vertex learns the minimum identifier in its component by
    iterated neighborhood minima; terminates once its value is stable
    and so are its neighbors'. O(log n)-bit messages, O(diameter)
    rounds. [par] is forwarded to {!Engine.run}: the output is
    bit-identical for every domain count. [frugal] enables the
    message-frugality layer — the flood is broadcast-shaped, so its
    whole-row rebroadcasts ride the collection-tree fast path; results
    and logical metrics are unchanged. *)

val bfs_distances :
  ?model:Model.t ->
  ?par:int ->
  ?frugal:Frugal.t ->
  root:int ->
  Grapho.Ugraph.t ->
  int array * Engine.metrics
(** Distributed BFS layering from [root]; unreachable vertices report
    [max_int]. *)

val luby_mis :
  ?seed:int -> ?model:Model.t -> Grapho.Ugraph.t -> bool array * Engine.metrics
(** Luby's maximal independent set: three rounds per phase (random
    values, joins, deaths), O(log n) phases w.h.p. The returned flags
    form an independent dominating set. *)

val maximal_matching :
  ?seed:int -> ?model:Model.t -> Grapho.Ugraph.t -> int array * Engine.metrics
(** Randomized proposal-based maximal matching (Israeli–Itai style);
    [mate.(v)] is the partner or [-1]. Both endpoints of a maximal
    matching form a 2-approximate vertex cover — the distributed route
    to MVC that Section 3's reduction plugs into. *)
