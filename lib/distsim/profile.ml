(* Wall-clock profiling for the round engine.

   A profile owns three log₂ histograms (message payload bits,
   per-vertex inbox sizes, per-round elapsed ns), span tables for
   rounds / protocol phases / per-shard stepping / serial merges,
   and instant markers for fault injections. The engine drives the
   [round_span]/[record_*]/[shard_*]/[merge_span] hooks; phases and
   faults arrive through {!sink}, which callers tee onto their trace
   before handing it to a protocol (protocols stamp phase markers on
   the engine's merge thread via [Trace.with_round_phases]).

   Determinism: everything the profiler stores that is not a clock
   reading — histogram contents, span counts, phase/fault sequences,
   shard layout — is a pure function of the simulated execution, so
   it is identical across schedulers and shard counts, exactly like
   the engine's own metrics. Clock-valued fields ([*_ns], [*_t0],
   [*_t1], timestamps) are measurements of the simulator and sit
   outside the determinism contract, as [round_stat.elapsed_ns]
   always has. On the [?par] path the shards write their own clock
   stamps into disjoint preallocated slots; all aggregation (span
   pushes, histogram merges) happens on the merge thread. *)

(* Growable int buffer: the spine of every span table. *)
type ibuf = { mutable ia : int array; mutable ilen : int }

let ibuf () = { ia = [||]; ilen = 0 }

let ipush b v =
  let cap = Array.length b.ia in
  if b.ilen = cap then begin
    let na = Array.make (max 16 (2 * cap)) 0 in
    Array.blit b.ia 0 na 0 b.ilen;
    b.ia <- na
  end;
  b.ia.(b.ilen) <- v;
  b.ilen <- b.ilen + 1

type sbuf = { mutable sa : string array; mutable slen : int }

let sbuf () = { sa = [||]; slen = 0 }

let spush b v =
  let cap = Array.length b.sa in
  if b.slen = cap then begin
    let na = Array.make (max 16 (2 * cap)) v in
    Array.blit b.sa 0 na 0 b.slen;
    b.sa <- na
  end;
  b.sa.(b.slen) <- v;
  b.slen <- b.slen + 1

type t = {
  msg_bits : Histogram.t;
  inbox_len : Histogram.t;
  round_ns : Histogram.t;
  (* Round spans: parallel arrays (round id, begin ns, end ns). *)
  r_round : ibuf;
  r_t0 : ibuf;
  r_t1 : ibuf;
  (* Phase markers, in arrival order: name / round / timestamp. *)
  ph_name : sbuf;
  ph_round : ibuf;
  ph_ts : ibuf;
  (* Fault instants: label / round / timestamp. *)
  f_label : sbuf;
  f_round : ibuf;
  f_ts : ibuf;
  (* Shard step spans (par path): round / shard / begin / end. *)
  sh_round : ibuf;
  sh_shard : ibuf;
  sh_t0 : ibuf;
  sh_t1 : ibuf;
  (* Serial-merge spans (par path): round / begin / end. *)
  mg_round : ibuf;
  mg_t0 : ibuf;
  mg_t1 : ibuf;
  (* Per-shard scratch, sized by [ensure_shards]: shards stamp their
     own clock readings into disjoint slots and record inbox sizes
     into private histograms; the merge thread flushes both. *)
  mutable sc_t0 : int array;
  mutable sc_t1 : int array;
  mutable sc_inbox : Histogram.t array;
  mutable t_start : int;  (* 0 = not yet stamped *)
  mutable t_end : int;
}

let create () =
  {
    msg_bits = Histogram.create ();
    inbox_len = Histogram.create ();
    round_ns = Histogram.create ();
    r_round = ibuf ();
    r_t0 = ibuf ();
    r_t1 = ibuf ();
    ph_name = sbuf ();
    ph_round = ibuf ();
    ph_ts = ibuf ();
    f_label = sbuf ();
    f_round = ibuf ();
    f_ts = ibuf ();
    sh_round = ibuf ();
    sh_shard = ibuf ();
    sh_t0 = ibuf ();
    sh_t1 = ibuf ();
    mg_round = ibuf ();
    mg_t0 = ibuf ();
    mg_t1 = ibuf ();
    sc_t0 = [||];
    sc_t1 = [||];
    sc_inbox = [||];
    t_start = 0;
    t_end = 0;
  }

(* ------------------------------------------------------------------ *)
(* Engine-side hooks. *)

let run_begin p = if p.t_start = 0 then p.t_start <- Clock.now_ns ()
let run_end p = p.t_end <- Clock.now_ns ()

let round_span p ~round ~t0 ~t1 =
  ipush p.r_round round;
  ipush p.r_t0 t0;
  ipush p.r_t1 t1;
  Histogram.record p.round_ns (t1 - t0)

let record_bits p bits = Histogram.record p.msg_bits bits
let record_inbox p len = Histogram.record p.inbox_len len

let ensure_shards p k =
  if Array.length p.sc_t0 < k then begin
    p.sc_t0 <- Array.make k 0;
    p.sc_t1 <- Array.make k 0;
    p.sc_inbox <- Array.init k (fun _ -> Histogram.create ())
  end

let shard_begin p ~shard = p.sc_t0.(shard) <- Clock.now_ns ()
let shard_end p ~shard = p.sc_t1.(shard) <- Clock.now_ns ()
let record_shard_inbox p ~shard len = Histogram.record p.sc_inbox.(shard) len

(* Merge-thread flush of one parallel round: shard spans land in
   ascending shard order and the shard inbox histograms fold into the
   global one — [Histogram.merge_into] is order-independent, so the
   result equals the sequential path's direct recording. *)
let merge_span p ~round ~shards ~t0 ~t1 =
  for s = 0 to shards - 1 do
    ipush p.sh_round round;
    ipush p.sh_shard s;
    ipush p.sh_t0 p.sc_t0.(s);
    ipush p.sh_t1 p.sc_t1.(s);
    Histogram.merge_into ~into:p.inbox_len p.sc_inbox.(s);
    Histogram.clear p.sc_inbox.(s)
  done;
  ipush p.mg_round round;
  ipush p.mg_t0 t0;
  ipush p.mg_t1 t1

let fault_label = function
  | Trace.Crash v -> Printf.sprintf "crash v%d" v
  | Trace.Cut (u, w) -> Printf.sprintf "cut %d-%d" u w
  | Trace.Restore (u, w) -> Printf.sprintf "restore %d-%d" u w

let sink p =
  Trace.custom ~sends:false (fun ev ->
      match ev with
      | Trace.Phase { name; round; _ } ->
          spush p.ph_name name;
          ipush p.ph_round round;
          ipush p.ph_ts (Clock.now_ns ())
      | Trace.Fault_injected { round; kind } ->
          spush p.f_label (fault_label kind);
          ipush p.f_round round;
          ipush p.f_ts (Clock.now_ns ())
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Reporting. *)

let message_bits p = p.msg_bits
let inbox_sizes p = p.inbox_len
let round_times p = p.round_ns
let rounds_profiled p = p.r_round.ilen
let fault_count p = p.f_round.ilen

let total_ns p =
  if p.t_start = 0 then 0
  else if p.t_end > p.t_start then p.t_end - p.t_start
  else if p.r_t1.ilen > 0 then p.r_t1.ia.(p.r_t1.ilen - 1) - p.t_start
  else 0

(* The end-of-profile timestamp used to close the last open phase
   span. *)
let close_ts p =
  if p.t_end > 0 then p.t_end
  else if p.r_t1.ilen > 0 then p.r_t1.ia.(p.r_t1.ilen - 1)
  else p.t_start

type phase_row = { phase : string; occurrences : int; total_ns : int }

(* A phase marker opens a span that the next marker (or the end of
   the profile) closes. Aggregation is by name in first-appearance
   order — deterministic, because markers are emitted on the merge
   thread in round order. *)
let phase_breakdown p =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  for i = 0 to p.ph_name.slen - 1 do
    let name = p.ph_name.sa.(i) in
    let t0 = p.ph_ts.ia.(i) in
    let t1 =
      if i + 1 < p.ph_name.slen then p.ph_ts.ia.(i + 1) else close_ts p
    in
    let dur = if t1 > t0 then t1 - t0 else 0 in
    match Hashtbl.find_opt tbl name with
    | Some row ->
        Hashtbl.replace tbl name
          { row with occurrences = row.occurrences + 1;
                     total_ns = row.total_ns + dur }
    | None ->
        order := name :: !order;
        Hashtbl.replace tbl name { phase = name; occurrences = 1; total_ns = dur }
  done;
  List.rev_map (fun name -> Hashtbl.find tbl name) !order

let shard_count p =
  let k = ref 0 in
  for i = 0 to p.sh_shard.ilen - 1 do
    if p.sh_shard.ia.(i) + 1 > !k then k := p.sh_shard.ia.(i) + 1
  done;
  !k

let shard_ns p =
  let k = shard_count p in
  let totals = Array.make k 0 in
  for i = 0 to p.sh_shard.ilen - 1 do
    let s = p.sh_shard.ia.(i) in
    let d = p.sh_t1.ia.(i) - p.sh_t0.ia.(i) in
    if d > 0 then totals.(s) <- totals.(s) + d
  done;
  totals

let merge_ns p =
  let total = ref 0 in
  for i = 0 to p.mg_round.ilen - 1 do
    let d = p.mg_t1.ia.(i) - p.mg_t0.ia.(i) in
    if d > 0 then total := !total + d
  done;
  !total

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export.

   Every event is a FLAT JSON object (string and number values only,
   rendered with Trace's own escape/float helpers), so each line of
   the emitted file — brackets and trailing commas aside — parses
   with [Trace.parse_flat_json]. Perfetto and chrome://tracing accept
   the plain JSON-array form. Tracks are encoded as thread ids:
   tid 0 = rounds (and fault instants), tid 1 = phases, tid 2 =
   serial merge, tid 3+s = shard s. Timestamps are microseconds
   relative to the profile's start. *)

let chrome_tid_rounds = 0
let chrome_tid_phases = 1
let chrome_tid_merge = 2
let chrome_tid_shard0 = 3

let base_ts p =
  if p.t_start > 0 then p.t_start
  else if p.r_t0.ilen > 0 then p.r_t0.ia.(0)
  else 0

let write_chrome p oc =
  let base = base_ts p in
  let buf = Buffer.create 128 in
  let first = ref true in
  let flush_event () =
    if !first then first := false else output_string oc ",\n";
    output_string oc (Buffer.contents buf);
    Buffer.clear buf
  in
  let us ns = Trace.json_float (float_of_int (ns - base) /. 1e3) in
  let dur_us ns = Trace.json_float (float_of_int ns /. 1e3) in
  let span ~name ~cat ~tid ~t0 ~t1 =
    Buffer.add_string buf "{\"name\":\"";
    Trace.escape_into buf name;
    Buffer.add_string buf
      (Printf.sprintf
         "\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\
          \"tid\":%d}"
         cat (us t0)
         (dur_us (if t1 > t0 then t1 - t0 else 0))
         tid);
    flush_event ()
  in
  let instant ~name ~cat ~tid ~ts =
    Buffer.add_string buf "{\"name\":\"";
    Trace.escape_into buf name;
    Buffer.add_string buf
      (Printf.sprintf
         "\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%s,\"s\":\"t\",\"pid\":1,\
          \"tid\":%d}"
         cat (us ts) tid);
    flush_event ()
  in
  output_string oc "[\n";
  for i = 0 to p.r_round.ilen - 1 do
    span
      ~name:(Printf.sprintf "round %d" p.r_round.ia.(i))
      ~cat:"round" ~tid:chrome_tid_rounds ~t0:p.r_t0.ia.(i) ~t1:p.r_t1.ia.(i)
  done;
  for i = 0 to p.ph_name.slen - 1 do
    let t1 =
      if i + 1 < p.ph_name.slen then p.ph_ts.ia.(i + 1) else close_ts p
    in
    span ~name:p.ph_name.sa.(i) ~cat:"phase" ~tid:chrome_tid_phases
      ~t0:p.ph_ts.ia.(i) ~t1
  done;
  for i = 0 to p.mg_round.ilen - 1 do
    span
      ~name:(Printf.sprintf "merge r%d" p.mg_round.ia.(i))
      ~cat:"merge" ~tid:chrome_tid_merge ~t0:p.mg_t0.ia.(i) ~t1:p.mg_t1.ia.(i)
  done;
  for i = 0 to p.sh_round.ilen - 1 do
    span
      ~name:(Printf.sprintf "shard %d r%d" p.sh_shard.ia.(i) p.sh_round.ia.(i))
      ~cat:"shard"
      ~tid:(chrome_tid_shard0 + p.sh_shard.ia.(i))
      ~t0:p.sh_t0.ia.(i) ~t1:p.sh_t1.ia.(i)
  done;
  for i = 0 to p.f_label.slen - 1 do
    instant ~name:p.f_label.sa.(i) ~cat:"fault" ~tid:chrome_tid_rounds
      ~ts:p.f_ts.ia.(i)
  done;
  output_string oc "\n]\n"

let chrome_event_count p =
  p.r_round.ilen + p.ph_name.slen + p.mg_round.ilen + p.sh_round.ilen
  + p.f_label.slen
