(** Message-frugality substrate: deterministic neighborhood-collection
    trees and physical-stream counters, after Bitton et al., "Message
    Reduction in the LOCAL Model is a Free Lunch" (arXiv:1909.08369).

    Passing a [t] to [Engine.run ?frugal] switches the engine's
    {e physical} accounting on: full-neighborhood broadcasts are
    charged as one tree publish plus one aggregated collect per
    reached receiver per round, and point-to-point re-sends of an
    unchanged payload are silenced by per-edge memoization (a
    one-time 2-bit [Again] marker arms the silence, a 2-bit [Eps]
    marker ends it). The {e logical} execution — deliveries, inbox
    contents, step schedule, adversary coin stream, the
    [messages]/[total_bits] metrics and the round series — is
    bit-identical with and without it; only
    [Engine.metrics.sent_physical]/[sent_bits] (and, when tracing,
    [Trace.round_stat.physical] and the [Send] event stream, which
    then describes physical traffic) differ.

    Construction is a pure function of [(graph, seed)]: each vertex
    adopts the member of its closed neighborhood with the smallest
    seeded hash as its hub, and every cluster gets a binary-heap tree
    over its members in ascending id order, so tree degrees never
    exceed 3 and two [create] calls with equal inputs agree exactly.

    All per-run payload-typed scratch lives inside [Engine.run]; a
    [t] is safely reused across runs and schedulers. The {!stats}
    counters accumulate across every run the value observes, like a
    [Profile.t] — call {!reset_stats} between A/B measurements. *)

type t

type mode =
  | Always  (** per-edge silence suppression armed from round 0 *)
  | Auto of int
      (** probe first: for the given number of rounds the per-edge
          machine only {e observes} (every direct send is charged at
          full size, so the physical stream is exactly the logical
          one on those edges — a 1.00x floor), counting how many
          sends repeat their previous-round payload and how many
          distinct silence runs those repeats form. At the end of the
          window suppression arms for the rest of the run iff
          [repeats > 2 * runs] — i.e. iff the average run is long
          enough that the [Again]/[Eps] marker pair costs fewer
          physical messages than the repeats it silences. Chunked
          CONGEST traffic, whose payload streams rarely repeat,
          thereby stays at parity instead of paying markers for
          nothing; broadcast suppression and the collection trees are
          unaffected (they never lose bits). The decision is made
          once per run on the merge thread, so it is deterministic
          across schedulers and shard counts. *)

val create : ?seed:int -> ?mode:mode -> Grapho.Ugraph.t -> t
(** Build the clustering and collection trees for [graph].
    Deterministic in [(graph, seed)]; O(n + m) time, O(n) space.
    [mode] (default {!Always}) selects the per-edge suppression
    policy; [Auto w] requires [w > 0] ([Invalid_argument]
    otherwise). *)

val default_seed : int

val default_auto_window : int
(** Observation rounds the CLI's [--frugal auto] uses (6). *)

val mode : t -> mode

val auto_window : t -> int
(** [Auto w]'s window, 0 under {!Always}. *)

val graph : t -> Grapho.Ugraph.t
(** The graph the trees were built for. [Engine.run] rejects a
    [frugal] value built for a different graph. *)

val seed : t -> int

(** {1 Tree structure} *)

val hub : t -> int -> int
(** [hub t v] is the cluster head [v] elected from its closed
    neighborhood — always [v] itself or one of its neighbors. *)

val tree_parent : t -> int -> int
(** Parent of [v] inside its cluster's collection tree, [-1] at the
    root (the cluster's smallest member id). *)

val tree_degree : t -> int -> int
(** Degree of [v] within its tree; at most 3 by construction. *)

val max_tree_degree : t -> int

val tree_count : t -> int
(** Number of non-empty clusters (= collection trees). *)

(** {1 Physical-stream counters}

    Maintained by the engine; read them after a run for the frugality
    breakdown the bench reports. All deterministic. *)

val publishes : t -> int
(** Broadcast payloads injected into collection trees. *)

val collects : t -> int
(** Aggregated per-receiver, per-round tree deliveries. *)

val suppressed : t -> int
(** Sends silenced by the per-edge (or per-broadcast) memo. *)

val markers : t -> int
(** 2-bit [Again]/[Eps] control messages charged to arm and release
    silences. *)

val auto_armed : t -> int
(** Runs in which an [Auto] window decided to arm suppression. *)

val auto_disarmed : t -> int
(** Runs in which an [Auto] window decided to stay at parity. *)

val reset_stats : t -> unit

(** {1 Engine hooks}

    Called by [Engine.run]; user code normally never calls these. *)

val note_publish : t -> unit
val note_collect : t -> unit
val note_suppressed : t -> int -> unit
val note_marker : t -> unit
val note_auto_decision : t -> armed:bool -> unit
