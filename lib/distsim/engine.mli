(** Synchronous round-by-round execution engine.

    A distributed algorithm is a value of type [('state, 'msg) spec].
    Execution follows the standard synchronous model: in every round
    each vertex consumes the messages sent to it in the previous round,
    updates its state, and emits messages to neighbors. Execution stops
    when every vertex has declared termination and no message is in
    flight, or when [max_rounds] is exceeded.

    The engine never lets a vertex observe anything but its own state
    and inbox, so an algorithm that type-checks against [spec] is
    honestly distributed; global knowledge must travel in messages. *)

type 'msg send = { dst : int; payload : 'msg }

type metrics = {
  rounds : int;  (** rounds executed *)
  messages : int;  (** total messages delivered *)
  total_bits : int;
  max_message_bits : int;
  congest_violations : int;
      (** messages exceeding the CONGEST bandwidth (0 under LOCAL) *)
  steps : int;
      (** total vertex activations: the [n] inits plus one per
          [spec.step] invocation. Under [`Naive] this is exactly
          [n * (rounds + 1)]; under [`Active] it is the work the
          event-driven scheduler actually did, so the difference is
          the scheduler's saving, now a first-class number. *)
}

type sched = [ `Active | `Naive ]
(** Scheduling strategy. [`Active] (the default) is event-driven: a
    vertex is stepped in a round only if it has pending inbox messages
    or has not signalled [`Done]; inboxes are insertion-ordered
    reusable buffers, so no per-round sorting or copying happens. It
    is observationally identical to [`Naive] for algorithms that are
    {e quiescent when done}: once a vertex returns [`Done], stepping
    it on an empty inbox must leave its state unchanged, emit nothing
    and return [`Done] again (a woken vertex may of course resume with
    [`Continue]). [`Naive] retains the original step-everyone loop
    with sorted inbox lists as a reference for differential testing
    ([test/test_engine_sched.ml]). *)

type ('state, 'msg) spec = {
  init :
    n:int -> vertex:int -> neighbors:int array ->
    'state * 'msg send list;
      (** Round 0: initial state and first outbox. Vertices know [n]
          (or a polynomial bound on it) and the identifiers of their
          neighbors, per the paper's input convention. *)
  step :
    round:int -> vertex:int -> 'state -> (int * 'msg) list ->
    'state * 'msg send list * [ `Continue | `Done ];
      (** One round: current state and inbox (pairs [(src, payload)],
          sorted by [src]) to new state, outbox and halting flag. A
          vertex that returned [`Done] keeps being stepped (it may
          serve as a relay) and may return to [`Continue]. *)
  measure : 'msg -> int;  (** wire size of a payload, in bits *)
}

exception Congest_violation of { src : int; dst : int; bits : int }

val run :
  ?max_rounds:int ->
  ?strict:bool ->
  ?observer:(src:int -> dst:int -> bits:int -> unit) ->
  ?trace:Trace.sink ->
  ?sched:sched ->
  ?par:int ->
  model:Model.t ->
  graph:Grapho.Ugraph.t ->
  ('state, 'msg) spec ->
  'state array * metrics
(** Runs the algorithm on the given topology. [trace] (default
    {!Trace.null}, which costs nothing) receives the structured event
    stream: [Round_begin]/[Round_end] around every round (round 0 is
    initialization) with per-round message counts, bit volumes,
    stepped-vertex counts and wall-clock time, plus one [Send] per
    wire message when the sink wants them. [observer] is the legacy
    per-message callback — internally a [Send]-only sink tee'd onto
    [trace] — that the two-party simulation harness uses to meter the
    bits crossing the Alice/Bob cut. [strict] (default [false]) raises
    {!Congest_violation} on the first oversized message instead of
    merely counting it. [sched] picks the scheduling strategy (default
    [`Active]). Sending to a non-neighbor raises [Invalid_argument].
    [max_rounds] defaults to [50 * (n + 5)]. Raises [Failure] if the
    round limit is hit before global termination.

    [par] (default 1) is the number of domains used to step each
    round under [`Active]: the vertex range is partitioned into
    contiguous shards, shards are stepped concurrently on a persistent
    {!Pool} with per-shard outbox buffers, and a serial merge then
    replays every side effect — message delivery, metric updates,
    congestion checks, trace [Send] events — in ascending vertex id,
    i.e. in exactly the sequential order. The result (states, spanner
    outputs, all metrics including [steps], and the full trace event
    stream) is therefore {e bit-identical} to [par = 1] for any value
    of [par]; see [test/test_engine_sched.ml]. Requirements on the
    spec under [par > 1]: [step] must touch no mutable state shared
    between vertices (per-vertex state records and per-vertex RNG
    streams are fine; every spec in this repository qualifies — see
    the randomness notes in the protocol modules). Trace sinks need no
    synchronization: all emission happens on the calling domain.
    Error-path caveat: under [par > 1], strict {!Congest_violation}
    and non-neighbor [Invalid_argument] are raised at merge time,
    after the full round has been stepped. [round 0] (initialization)
    always runs sequentially. [`Naive] ignores [par]: it is the
    single-domain reference the parallel path is tested against. *)
