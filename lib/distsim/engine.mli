(** Synchronous round-by-round execution engine.

    A distributed algorithm is a value of type [('state, 'msg) spec].
    Execution follows the standard synchronous model: in every round
    each vertex consumes the messages sent to it in the previous round,
    updates its state, and emits messages to neighbors. Execution stops
    when every vertex has declared termination and no message is in
    flight, or when [max_rounds] is exceeded.

    The engine never lets a vertex observe anything but its own state
    and inbox, so an algorithm that type-checks against [spec] is
    honestly distributed; global knowledge must travel in messages.

    {1 The mailbox API}

    Message plumbing is {e zero-allocation} in the steady state: a
    vertex reads its inbox through a reused {!type:inbox} view (length
    + indexed access + iter/fold over the engine's internal buffer
    bank — no list is ever materialized) and sends by pushing into a
    reused {!type:outbox} via {!emit} instead of returning a list of
    send records. The engine preallocates the inbox banks and outboxes
    once and recycles them every round, so a protocol whose [step]
    itself does not allocate runs without minor-GC traffic; the
    [minor_words]/[allocated_bytes] fields of {!metrics} (and the
    per-round [minor_words] of {!Trace.round_stat}) make that
    measurable. *)

type 'msg inbox
(** Read-only view of the messages a vertex received last round,
    backed by a buffer the engine reuses across rounds. Valid only for
    the duration of the [step] call it is passed to — do not stash it
    in vertex state. Entries appear in ascending source id (sources
    are stepped in ascending order and each appends in turn). *)

type 'msg outbox
(** Push handle for this round's sends, backed by a buffer the engine
    drains and reuses. Valid only for the duration of the [init]/[step]
    call it is passed to. *)

val inbox_length : 'msg inbox -> int
val inbox_src : 'msg inbox -> int -> int
(** [inbox_src ib i] is the sender of the [i]-th message, [0 <= i <
    inbox_length ib]. No bounds check beyond the array's own. *)

val inbox_payload : 'msg inbox -> int -> 'msg
val inbox_iter : (src:int -> 'msg -> unit) -> 'msg inbox -> unit
val inbox_fold : ('a -> src:int -> 'msg -> 'a) -> 'a -> 'msg inbox -> 'a

val emit : 'msg outbox -> dst:int -> 'msg -> unit
(** Queue one message to neighbor [dst]. The engine validates the
    edge, meters the payload and delivers when the emitting vertex's
    step completes (sequential) or at the deterministic merge
    (parallel). *)

(** Constructors and mutators, exposed so the LOCAL→CONGEST compiler
    ({!Chunked}) and the test suites can build views of their own;
    protocol code should never need them. *)

val inbox_create : ?hint:int -> unit -> 'msg inbox
(** [?hint] sizes the first growth of the backing arrays (the engine
    passes each vertex's degree), so a buffer reaches steady-state
    capacity in one allocation instead of a doubling chain. *)

val inbox_clear : 'msg inbox -> unit
val inbox_push : 'msg inbox -> src:int -> 'msg -> unit

val outbox_create : ?hint:int -> unit -> 'msg outbox
val outbox_clear : 'msg outbox -> unit
val outbox_length : 'msg outbox -> int
val outbox_iter : (dst:int -> 'msg -> unit) -> 'msg outbox -> unit

val outbox_dst : 'msg outbox -> int -> int
(** [outbox_dst ob i] is the destination of the [i]-th queued message,
    [0 <= i < outbox_length ob]. Indexed reads stay valid across
    subsequent {!emit}s (growth copies), which is what lets the
    retransmit wrapper ({!Faults.with_retry}) re-emit a step's own
    sends while iterating them. *)

val outbox_payload : 'msg outbox -> int -> 'msg

val inbox_keep_first_per_src : 'msg inbox -> unit
(** In-place dedup keeping the {e first} message of every source —
    the receive side of the retransmit wrapper: retransmitted copies
    and adversarial [Duplicate]s arrive as extra entries sharing a
    [src]. Only meaningful for protocols that send at most one message
    per (src, dst) per round (every protocol in this repository).
    Quadratic in the inbox length (degree-bounded); allocates
    nothing. *)

type metrics = {
  rounds : int;  (** rounds executed *)
  messages : int;  (** total messages delivered *)
  total_bits : int;
  max_message_bits : int;
  congest_violations : int;
      (** messages exceeding the CONGEST bandwidth (0 under LOCAL) *)
  steps : int;
      (** total vertex activations: the [n] inits plus one per
          [spec.step] invocation. Under [`Naive] this is exactly
          [n * (rounds + 1)] on a fault-free run (crash-stopped
          vertices are no longer stepped); under [`Active] it is the
          work the event-driven scheduler actually did, so the
          difference is the scheduler's saving, now a first-class
          number. *)
  dropped : int;
      (** messages the adversary destroyed (random drop, crashed
          endpoint, or cut link). Dropped messages still count in
          [messages]/[total_bits] — they were sent, they just never
          arrived. 0 when no adversary is installed. *)
  crashed : int;
      (** vertices crash-stopped over the run. 0 without adversary. *)
  sent_physical : int;
      (** wire messages actually charged. Equal to [messages] on a
          plain run; under [run ?frugal] it counts the reduced
          physical stream — data sends, 2-bit silence markers, tree
          publishes and aggregated per-receiver collects — while
          [messages] keeps counting the logical layer. Exact and
          deterministic (an integer, not a histogram summary), so A/B
          gates can compare it with [=]. *)
  sent_bits : int;
      (** total wire bits actually charged; equal to [total_bits] on a
          plain run. Deterministic, like [sent_physical]. *)
  minor_words : float;
      (** [Gc.minor_words] delta over the run, measured on the calling
          domain. Under [par > 1] the pool domains' own allocations
          are not included (each domain has its own minor heap), so
          this is the {e coordination} cost; under [par = 1] it is the
          whole simulation's minor-heap traffic. Not deterministic
          across schedulers/domains — excluded from the determinism
          contract, see {!metrics_deterministic_eq}. *)
  allocated_bytes : float;
      (** Conservative lower bound on bytes allocated over the run
          (calling domain): the max of the [Gc.allocated_bytes] delta
          (which also sees direct major-heap allocations but only
          advances at minor-heap flushes) and the byte equivalent of
          the precise [minor_words] delta. Same caveats as
          [minor_words]. *)
}

val metrics_deterministic_eq : metrics -> metrics -> bool
(** Equality on the deterministic projection of {!metrics} — every
    field except the GC-pressure floats ([minor_words],
    [allocated_bytes]), which legitimately vary across schedulers,
    domain counts and runs. This is the equality the determinism
    contract (seq vs [par], [`Active] vs [`Naive]) is stated in. *)

val metrics_logical_eq : metrics -> metrics -> bool
(** {!metrics_deterministic_eq} minus the physical stream
    ([sent_physical], [sent_bits]): the projection a [?frugal] run
    keeps bit-identical to a plain run of the same spec. The frugal
    A/B gates are stated in this equality. *)

type sched = [ `Active | `Active_legacy_cost | `Naive ]
(** Scheduling strategy. [`Active] (the default) is event-driven: a
    vertex is stepped in a round only if it has pending inbox messages
    or has not signalled [`Done]; inboxes are insertion-ordered
    reusable buffers exposed directly as the {!type:inbox} view, so the
    steady state neither sorts, copies nor allocates. It is
    observationally identical to [`Naive] for algorithms that are
    {e quiescent when done}: once a vertex returns [`Done], stepping
    it on an empty inbox must leave its state unchanged, emit nothing
    and return [`Done] again (a woken vertex may of course resume with
    [`Continue]). [`Naive] retains the original step-everyone loop
    with per-round rebuilt-and-sorted inboxes as a reference for
    differential testing ([test/test_engine_sched.ml]).

    [`Active_legacy_cost] is the [`Active] scheduler with a
    benchmarking shim interposed that reproduces the pre-mailbox
    allocation profile — every step materializes a sorted
    [(src, msg) list] inbox and routes sends through a send-record
    list before replaying them. Identical results and deterministic
    metrics; exists as the "before" side of the allocation A/B in the
    bench binary. Single-domain only ([par] is ignored). *)

type ('state, 'msg) spec = {
  init :
    n:int -> vertex:int -> neighbors:int array -> out:'msg outbox ->
    'state;
      (** Round 0: initial state; first sends go through [out].
          Vertices know [n] (or a polynomial bound on it) and the
          identifiers of their neighbors, per the paper's input
          convention. *)
  step :
    round:int -> vertex:int -> 'state -> 'msg inbox -> out:'msg outbox ->
    'state * [ `Continue | `Done ];
      (** One round: current state and inbox view (entries sorted by
          source) to new state and halting flag; sends go through
          [out]. A vertex that returned [`Done] keeps being stepped
          (it may serve as a relay) and may return to [`Continue].
          The inbox and outbox are only valid during the call. *)
  measure : 'msg -> int;  (** wire size of a payload, in bits *)
}

exception Congest_violation of { src : int; dst : int; bits : int }

val run :
  ?max_rounds:int ->
  ?strict:bool ->
  ?observer:(src:int -> dst:int -> bits:int -> unit) ->
  ?trace:Trace.sink ->
  ?sched:sched ->
  ?par:int ->
  ?adversary:Adversary.t ->
  ?profile:Profile.t ->
  ?frugal:Frugal.t ->
  ?active:int array ->
  model:Model.t ->
  graph:Grapho.Ugraph.t ->
  ('state, 'msg) spec ->
  'state array * metrics
(** Runs the algorithm on the given topology. [trace] (default
    {!Trace.null}, which costs nothing) receives the structured event
    stream: [Round_begin]/[Round_end] around every round (round 0 is
    initialization) with per-round message counts, bit volumes,
    stepped-vertex counts, wall-clock time and minor-words allocated,
    plus one [Send] per wire message when the sink wants them.
    [observer] is the legacy per-message callback — internally a
    [Send]-only sink tee'd onto [trace] — that the two-party
    simulation harness uses to meter the bits crossing the Alice/Bob
    cut. [strict] (default [false]) raises {!Congest_violation} on the
    first oversized message instead of merely counting it. [sched]
    picks the scheduling strategy (default [`Active]). Sending to a
    non-neighbor raises [Invalid_argument]. [max_rounds] defaults to
    [50 * (n + 5)]. Raises [Failure] if the round limit is hit before
    global termination.

    [par] (default 1) is the number of domains used to step each
    round under [`Active]: the vertex range is partitioned into
    contiguous shards, shards are stepped concurrently on a persistent
    {!Pool}, each shard appending its sends to a per-shard outbox plus
    a [(vertex, count)] segment index, and a serial merge then replays
    every side effect — message delivery, metric updates, congestion
    checks, trace [Send] events — in ascending vertex id, i.e. in
    exactly the sequential order. The result (states, spanner outputs,
    all deterministic metrics including [steps], and the full trace
    event stream) is therefore {e bit-identical} to [par = 1] for any
    value of [par] — GC-pressure fields excepted, see
    {!metrics_deterministic_eq} — as checked by
    [test/test_engine_sched.ml]. Requirements on the spec under
    [par > 1]: [step] must touch no mutable state shared between
    vertices (per-vertex state records and per-vertex RNG streams are
    fine; every spec in this repository qualifies — see the randomness
    notes in the protocol modules). Trace sinks need no
    synchronization: all emission happens on the calling domain.
    Error-path caveat: under [par > 1], strict {!Congest_violation}
    and non-neighbor [Invalid_argument] are raised at merge time,
    after the full round has been stepped. [round 0] (initialization)
    always runs sequentially. [`Naive] ignores [par]: it is the
    single-domain reference the parallel path is tested against.

    [adversary] (default none) installs a deterministic fault
    injector (see {!Adversary} and the {!Faults} DSL). The engine
    calls {!Adversary.reset} before round 0, activates the faults
    scheduled at each round on the calling domain {e before} any
    stepping (a crash-stopped vertex loses its pending inbox, is
    flagged done, and never steps again — deliveries to it are
    dropped), and consults the adversary once per wire message in
    delivery order — which is the sequential vertex order under every
    scheduler and shard count, so a faulted run is {e bit-identical}
    across seq/[par]/[`Naive] exactly like a fault-free one. Dropped
    messages are metered as sent but not delivered ([dropped] in
    {!metrics} and {!Trace.round_stat}); duplicated messages are
    metered twice. An adversary with an empty schedule
    ({!Adversary.has_faults}[ = false]) is normalized away, so it is
    byte-identical to passing no adversary at all.

    [profile] (default none) installs a wall-clock {!Profile}: round
    spans and a round-time histogram, every metered message's payload
    bits, every stepped vertex's inbox size, and — under [par > 1] —
    per-shard stepping spans plus the serial-merge span of each
    round. Purely observational: the simulated execution is
    bit-identical with and without it, and identical across
    schedulers and shard counts with it (only clock-valued profile
    fields differ, like [round_stat.elapsed_ns]). All profile
    aggregation happens on the calling thread; shards only stamp
    their own clocks and private histograms into disjoint slots.
    When absent the engine takes the exact pre-profiling path: no
    clock reads beyond tracing's, no allocation.

    [frugal] (default none) switches on message-frugal {e physical}
    accounting (see {!Frugal}): full-neighborhood broadcasts are
    charged as one collection-tree publish plus one aggregated
    collect per reached receiver per round, and consecutive identical
    point-to-point sends are silenced by per-edge memoization (2-bit
    [Again]/[Eps] markers bracket each silence; a run of [k]
    identical [b]-bit sends costs 3 physical messages and [b + 4]
    bits). The {e logical} execution is untouched — deliveries, the
    step schedule, the adversary coin stream (consulted once per
    logical message, exactly as plain), [messages]/[total_bits], the
    round series and the final states are bit-identical with and
    without it, under every scheduler, shard count and fault
    schedule ({!metrics_logical_eq}). What changes: [sent_physical]/
    [sent_bits] meter the reduced stream, [Trace.round_stat.physical]
    carries its per-round counts, and [Send] events plus the
    profile's bits histogram describe physical traffic (an
    aggregated collect appears as [src = -1]). Under an adversary the
    collection trees disengage (silence suppression stays active, at
    full charge for faulted copies), so drops always apply to
    messages that were physically charged. The value must have been
    built for the same graph ([Invalid_argument] otherwise).

    [active] (default: every vertex) restricts the simulation to a
    {e sparse activation set}: only the listed vertices are
    initialized and stepped, and the run is observationally the
    protocol executed on the induced subgraph [g[active]] — each
    active vertex sees only its active neighbors in [~neighbors], but
    keeps its {e global} id in [~vertex] (so identifier-keyed
    randomness and outputs stay aligned with the full graph). This is
    the repair primitive of the churn path ({!Incremental}): re-run
    the protocol on a dirty ball whose size tracks the churn
    footprint, paying per-round cost proportional to the ball, not
    [n]. The array must be strictly ascending with entries in
    [0, n) ([Invalid_argument] otherwise). The returned state array
    has length [Array.length active], with slot [i] holding the final
    state of vertex [active.(i)]. Frozen (non-active) vertices
    receive nothing; a send addressed to one raises
    [Invalid_argument] — the spec must be run on a set closed enough
    that no active vertex messages outside it, which {!Incremental}
    guarantees by including every neighbor a dirty vertex can
    address. Determinism is preserved: active slots are stepped (and
    merged, under [par]) in ascending vertex order, so seq/[par]/
    [`Naive] runs remain bit-identical exactly as in the dense case.
    [max_rounds] defaults to [50 * (|active| + 5)]. Composes with
    [?adversary]: the coin stream is consulted once per delivered
    message in merge order exactly as on a dense run, fraction
    crashes resolve over the full-graph [n], and a crash scheduled at
    a frozen vertex is a no-op on engine state (the vertex was never
    running) — so faulted sparse runs stay bit-identical across
    schedulers and shard counts. Incompatible with [?frugal] (it keys
    per-edge suppression machines on the full graph): passing it
    together with [active] raises [Invalid_argument]. *)
