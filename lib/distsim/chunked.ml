(* Per-destination queues and per-source reassembly buffers live in
   small association lists (degree-bounded), which beats hashing on
   the per-real-round hot path: no key snapshots, no double lookups,
   no per-round allocation when idle. *)
type 's outer_state = {
  mutable inner : 's;
  mutable queues : (int * int list ref) list;
      (* dst -> chunks still to send *)
  mutable buffers : (int * int list ref) list;
      (* src -> chunks received (rev) *)
  mutable inner_done : bool;
}

let run ?max_rounds ?strict ?trace ?sched ?par ~model ~graph ~chunks_per_round
    ~encode ~decode spec =
  if chunks_per_round < 2 then
    invalid_arg "Chunked.run: chunks_per_round must be at least 2";
  let c = chunks_per_round in
  (* Frame a message as [length; chunk1; ...; chunkL]. *)
  let frame msg =
    let chunks = encode msg in
    let len = List.length chunks in
    if len > c - 1 then
      invalid_arg
        (Printf.sprintf
           "Chunked.run: a message encoded to %d chunks, budget is %d" len
           (c - 1));
    len :: chunks
  in
  let enqueue st outbox =
    List.iter
      (fun { Engine.dst; payload } ->
        (* One inner message per edge per virtual round: anything more
           cannot fit the chunk schedule (and violates the model). *)
        if List.mem_assoc dst st.queues then
          invalid_arg
            "Chunked.run: two messages to one destination in a round";
        st.queues <- (dst, ref (frame payload)) :: st.queues)
      outbox
  in
  (* One chunk per destination per real round. The common case — an
     idle vertex with nothing queued — pays only the [[]] match. *)
  let drain st =
    match st.queues with
    | [] -> []
    | qs ->
        let out =
          List.filter_map
            (fun (dst, q) ->
              match !q with
              | [] -> None
              | chunk :: rest ->
                  q := rest;
                  Some { Engine.dst; payload = chunk })
            qs
        in
        st.queues <- List.filter (fun (_, q) -> !q <> []) qs;
        out
  in
  let queues_empty st = st.queues = [] in
  let absorb st inbox =
    List.iter
      (fun (src, chunk) ->
        match List.assoc_opt src st.buffers with
        | Some r -> r := chunk :: !r
        | None -> st.buffers <- (src, ref [ chunk ]) :: st.buffers)
      inbox
  in
  let deliverables st =
    match st.buffers with
    | [] -> []
    | buffers ->
        let messages =
          List.fold_left
            (fun acc (src, rev_chunks) ->
              let rev_chunks = !rev_chunks in
              let rec parse stream acc =
                match stream with
                | [] -> acc
                | len :: rest ->
                    let rec take k stream taken =
                      if k = 0 then (List.rev taken, stream)
                      else
                        match stream with
                        | x :: xs -> take (k - 1) xs (x :: taken)
                        | [] ->
                            invalid_arg
                              (Printf.sprintf
                                 "Chunked.run: truncated chunk stream (src=%d \
                                  need=%d have=%d)"
                                 src k
                                 (List.length rev_chunks))
                    in
                    let body, rest = take len rest [] in
                    let msg, leftover = decode body in
                    if leftover <> [] then
                      invalid_arg "Chunked.run: decoder left residue";
                    parse rest ((src, msg) :: acc)
              in
              parse (List.rev rev_chunks) acc)
            [] buffers
        in
        st.buffers <- [];
        (* Engine semantics: inboxes sorted by source. *)
        List.sort (fun (a, _) (b, _) -> compare a b) messages
  in
  let outer =
    {
      Engine.init =
        (fun ~n ~vertex ~neighbors ->
          let inner, outbox = spec.Engine.init ~n ~vertex ~neighbors in
          let st =
            { inner; queues = []; buffers = []; inner_done = false }
          in
          enqueue st outbox;
          (st, drain st));
      step =
        (fun ~round ~vertex st inbox ->
          absorb st inbox;
          if round mod c = 0 then begin
            (* Virtual round boundary: deliver and run the inner step. *)
            let virtual_round = round / c in
            let delivered = deliverables st in
            let inner, outbox, status =
              spec.Engine.step ~round:virtual_round ~vertex st.inner delivered
            in
            st.inner <- inner;
            st.inner_done <- (status = `Done);
            enqueue st outbox;
            ( st,
              drain st,
              if st.inner_done && queues_empty st then `Done else `Continue )
          end
          else
            ( st,
              drain st,
              if st.inner_done && queues_empty st then `Done else `Continue ))
        ;
      measure = (fun chunk -> 6 + Message.bits_int (abs chunk + 1));
    }
  in
  let states, metrics =
    Engine.run ?max_rounds ?strict ?trace ?sched ?par ~model ~graph outer
  in
  (Array.map (fun st -> st.inner) states, metrics)
