(* Per-destination queues and per-source reassembly buffers live in
   small association lists (degree-bounded), which beats hashing on
   the per-real-round hot path: no key snapshots, no double lookups,
   no per-round allocation when idle. The inner algorithm's mailbox is
   virtualized through two reused per-vertex views: [inner_in] is
   refilled with the reassembled messages at each virtual-round
   boundary and [inner_out] collects the inner step's emissions before
   they are framed into chunk queues — so the outer (real-round) hot
   path never materializes send lists. *)
type ('s, 'm) outer_state = {
  mutable inner : 's;
  mutable queues : (int * int list ref) list;
      (* dst -> chunks still to send *)
  mutable buffers : (int * int list ref) list;
      (* src -> chunks received (rev) *)
  mutable inner_done : bool;
  inner_in : 'm Engine.inbox;  (* reused reassembled-message view *)
  inner_out : 'm Engine.outbox;  (* reused inner-step push handle *)
}

exception
  Bandwidth_exceeded of {
    vertex : int;
    round : int;
    bits : int;
    budget : int;
  }

let measure_chunk chunk = 6 + Message.bits_int (abs chunk + 1)

let run ?max_rounds ?strict ?trace ?sched ?par ?adversary ?profile ?frugal
    ?(retry = 1) ?(audit = false) ~model ~graph ~chunks_per_round ~encode
    ~decode spec =
  if chunks_per_round < 2 then
    invalid_arg "Chunked.run: chunks_per_round must be at least 2";
  let c = chunks_per_round in
  (* The audit budget: the model's own bandwidth under CONGEST, the
     customary O(log n) otherwise. *)
  let budget =
    match Model.bandwidth model with
    | Some b -> b
    | None ->
        let n = Grapho.Ugraph.n graph in
        6 + (4 * Message.bits_int (n + 1))
  in
  (* Frame a message as [length; chunk1; ...; chunkL]. *)
  let frame ~vertex ~round msg =
    let chunks = encode msg in
    let len = List.length chunks in
    if len > c - 1 then
      invalid_arg
        (Printf.sprintf
           "Chunked.run: a message encoded to %d chunks, budget is %d" len
           (c - 1));
    if audit then
      List.iter
        (fun chunk ->
          let bits = measure_chunk chunk in
          if bits > budget then
            raise (Bandwidth_exceeded { vertex; round; bits; budget }))
        chunks;
    len :: chunks
  in
  (* Move the inner step's emissions into the chunk queues. [vertex]
     and [round] (the {e real} engine round) identify the offender
     when the audit trips. *)
  let enqueue ~vertex ~round st =
    Engine.outbox_iter
      (fun ~dst payload ->
        (* One inner message per edge per virtual round: anything more
           cannot fit the chunk schedule (and violates the model). *)
        if List.mem_assoc dst st.queues then
          invalid_arg
            "Chunked.run: two messages to one destination in a round";
        st.queues <- (dst, ref (frame ~vertex ~round payload)) :: st.queues)
      st.inner_out;
    Engine.outbox_clear st.inner_out
  in
  (* One chunk per destination per real round, pushed straight into
     the real outbox. The common case — an idle vertex with nothing
     queued — pays only the [[]] match. *)
  let drain st ~out =
    match st.queues with
    | [] -> ()
    | qs ->
        List.iter
          (fun (dst, q) ->
            match !q with
            | [] -> ()
            | chunk :: rest ->
                q := rest;
                Engine.emit out ~dst chunk)
          qs;
        st.queues <- List.filter (fun (_, q) -> !q <> []) qs
  in
  let queues_empty st = st.queues = [] in
  let absorb st inbox =
    Engine.inbox_iter
      (fun ~src chunk ->
        match List.assoc_opt src st.buffers with
        | Some r -> r := chunk :: !r
        | None -> st.buffers <- (src, ref [ chunk ]) :: st.buffers)
      inbox
  in
  (* Reassemble complete inner messages into [st.inner_in]. *)
  let deliverables st =
    Engine.inbox_clear st.inner_in;
    match st.buffers with
    | [] -> ()
    | buffers ->
        let messages =
          List.fold_left
            (fun acc (src, rev_chunks) ->
              let rev_chunks = !rev_chunks in
              let rec parse stream acc =
                match stream with
                | [] -> acc
                | len :: rest ->
                    let rec take k stream taken =
                      if k = 0 then (List.rev taken, stream)
                      else
                        match stream with
                        | x :: xs -> take (k - 1) xs (x :: taken)
                        | [] ->
                            invalid_arg
                              (Printf.sprintf
                                 "Chunked.run: truncated chunk stream (src=%d \
                                  need=%d have=%d)"
                                 src k
                                 (List.length rev_chunks))
                    in
                    let body, rest = take len rest [] in
                    let msg, leftover = decode body in
                    if leftover <> [] then
                      invalid_arg "Chunked.run: decoder left residue";
                    parse rest ((src, msg) :: acc)
              in
              parse (List.rev rev_chunks) acc)
            [] buffers
        in
        st.buffers <- [];
        (* Engine semantics: inboxes sorted by source (monomorphic
           key — sources are ints). *)
        List.iter
          (fun (src, msg) -> Engine.inbox_push st.inner_in ~src msg)
          (List.sort (fun (a, _) (b, _) -> Int.compare a b) messages)
  in
  let status_of st =
    if st.inner_done && queues_empty st then `Done else `Continue
  in
  let outer =
    {
      Engine.init =
        (fun ~n ~vertex ~neighbors ~out ->
          let inner_out = Engine.outbox_create () in
          let inner = spec.Engine.init ~n ~vertex ~neighbors ~out:inner_out in
          let st =
            {
              inner;
              queues = [];
              buffers = [];
              inner_done = false;
              inner_in = Engine.inbox_create ();
              inner_out;
            }
          in
          enqueue ~vertex ~round:0 st;
          drain st ~out;
          st);
      step =
        (fun ~round ~vertex st inbox ~out ->
          absorb st inbox;
          if round mod c = 0 then begin
            (* Virtual round boundary: deliver and run the inner step. *)
            let virtual_round = round / c in
            deliverables st;
            let inner, status =
              spec.Engine.step ~round:virtual_round ~vertex st.inner
                st.inner_in ~out:st.inner_out
            in
            st.inner <- inner;
            st.inner_done <- (status = `Done);
            enqueue ~vertex ~round st;
            drain st ~out;
            (st, status_of st)
          end
          else begin
            drain st ~out;
            (st, status_of st)
          end);
      measure = measure_chunk;
    }
  in
  (* The retransmit wrapper goes around the {e outer} (chunk-level)
     spec: the compiled protocol sends at most one chunk per
     (src, dst) per real round, which is exactly the shape
     [Faults.with_retry] requires. *)
  let outer = Faults.with_retry ~attempts:retry outer in
  let states, metrics =
    Engine.run ?max_rounds ?strict ?trace ?sched ?par ?adversary ?profile
      ?frugal ~model ~graph outer
  in
  (Array.map (fun st -> st.inner) states, metrics)
