(** The shared wall-clock: one timing source for the engine's
    [elapsed_ns], the profiler's spans and the bench harness's
    wall-clock timers. Microsecond-granular ([Unix.gettimeofday]
    underneath); all readings share one epoch so spans from
    different layers can be compared and subtracted directly. *)

val now_s : unit -> float
(** Seconds since the Unix epoch, as a float. *)

val now_ns : unit -> int
(** Nanoseconds since the Unix epoch (microsecond-granular). Fits an
    OCaml 63-bit int until the year 2262. *)

val ms_of_ns : int -> float
(** Convert a nanosecond count (or span) to milliseconds. *)

val us_of_ns : int -> float
(** Convert a nanosecond count (or span) to microseconds. *)
