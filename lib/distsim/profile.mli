(** Wall-clock profiling for the round engine.

    A profile collects, for one or more engine runs:

    - {b histograms} ({!Histogram}): per-message payload bits,
      per-vertex inbox sizes at step time, per-round elapsed
      nanoseconds;
    - {b spans}: every round's wall-clock interval, every protocol
      phase (derived from the phase markers protocols stamp through
      [Trace.with_round_phases]), and — on the [?par] path — each
      shard's stepping interval plus the serial merge interval, per
      round;
    - {b instants}: fault injections.

    Passing a profile to [Engine.run ?profile] is strictly
    observational: the simulated execution (spanner, metrics, round
    series, adversary coin stream) is bit-identical with and without
    it, and identical across schedulers and shard counts with it.
    Histogram contents, span/marker counts and orders are themselves
    deterministic; only clock-valued fields (timestamps, [*_ns]
    durations) vary run to run, mirroring how
    [Trace.round_stat.elapsed_ns] already sits outside the
    determinism contract. With [?profile] absent the engine skips
    every hook — the disabled path does no extra work and allocates
    nothing, like the [Trace.null] sink.

    Phases and faults reach the profile through {!sink}: tee it onto
    the trace you hand the protocol, e.g.
    [~trace:(Trace.tee user_sink (Profile.sink p))]. *)

type t

val create : unit -> t
(** A fresh, empty profile. *)

val sink : t -> Trace.sink
(** A [wants_sends = false] sink recording [Phase] markers and
    [Fault_injected] instants with arrival timestamps. Tee it onto
    the trace passed to a protocol so its phase schedule lands in the
    profile. *)

(** {1 Engine hooks}

    Called by [Engine.run] when a profile is installed; user code
    normally never calls these. All of them except
    {!shard_begin}/{!shard_end}/{!record_shard_inbox} run on the
    engine's calling (merge) thread. *)

val run_begin : t -> unit
(** Stamp the profile's start time (first call wins, so a profile
    spanning several engine runs keeps its original origin). *)

val run_end : t -> unit
(** Stamp the profile's end time (last call wins). *)

val round_span : t -> round:int -> t0:int -> t1:int -> unit
(** Record one round's wall-clock interval and its duration in the
    round-time histogram. *)

val record_bits : t -> int -> unit
(** Record one wire message's payload size (every metered message,
    delivered or dropped — reconciles with [metrics.messages] /
    [total_bits]; under [Engine.run ?frugal] the engine feeds it the
    {e physical} stream instead, so it reconciles with
    [metrics.sent_physical] / [sent_bits] — 2-bit silence markers and
    aggregated collect frames show up as such). Allocation-free. *)

val record_inbox : t -> int -> unit
(** Record the inbox size a stepped vertex saw (sequential path).
    Allocation-free. *)

val ensure_shards : t -> int -> unit
(** Size the per-shard scratch (timestamps + private inbox
    histograms) for [k] shards. Called once per parallel run. *)

val shard_begin : t -> shard:int -> unit
(** Stamp a shard's step-phase start; runs on the shard's domain,
    writing only its own slot. *)

val shard_end : t -> shard:int -> unit

val record_shard_inbox : t -> shard:int -> int -> unit
(** Record an inbox size into the shard's private histogram; runs on
    the shard's domain. Allocation-free. *)

val merge_span : t -> round:int -> shards:int -> t0:int -> t1:int -> unit
(** Merge-thread flush of one parallel round: pushes the [shards]
    recorded shard spans (ascending shard order), folds and clears
    the shard inbox histograms into the global one (order-independent,
    so contents equal the sequential path's), and records the serial
    merge interval [t0, t1]. *)

(** {1 Reporting} *)

val message_bits : t -> Histogram.t
val inbox_sizes : t -> Histogram.t
val round_times : t -> Histogram.t

val rounds_profiled : t -> int
(** Number of round spans recorded (round 0 included). *)

val fault_count : t -> int

val total_ns : t -> int
(** Wall-clock span of the whole profile (0 if never started). *)

type phase_row = { phase : string; occurrences : int; total_ns : int }

val phase_breakdown : t -> phase_row list
(** Per-phase aggregate, in first-appearance order: a phase marker
    opens a span that the next marker (or the profile's end) closes;
    [occurrences] counts markers (deterministic), [total_ns] sums the
    spans (clock-valued). *)

val shard_ns : t -> int array
(** Total stepping nanoseconds per shard; [[||]] for sequential
    runs. *)

val merge_ns : t -> int
(** Total serial-merge nanoseconds across all parallel rounds. *)

(** {1 Chrome trace_event export} *)

val write_chrome : t -> out_channel -> unit
(** Writes the profile as a Chrome [trace_event] JSON array, loadable
    in Perfetto ({{:https://ui.perfetto.dev}ui.perfetto.dev}) or
    chrome://tracing: rounds as duration events on tid 0, phases on
    tid 1, serial merges on tid 2, shard stepping on tid 3+shard,
    fault injections as instants. Timestamps are microseconds from
    the profile's start. Every event is a flat JSON object in the
    dialect of Trace's codec — each emitted line (minus the
    surrounding brackets and the separating comma) parses with
    [Trace.parse_flat_json]. *)

val chrome_event_count : t -> int
(** Number of events {!write_chrome} will emit. *)
