(* Message-frugality substrate for the round engine: deterministic
   neighborhood-collection trees plus the counters behind the
   physical/logical message split.

   Following Bitton et al., "Message Reduction in the LOCAL Model is a
   Free Lunch" (arXiv:1909.08369), LOCAL protocols that broadcast to
   whole neighborhoods do not need one wire message per edge: vertices
   publish each broadcast payload once into a low-degree collection
   tree, and every vertex fetches everything its neighborhood
   published this round in a single aggregated "collect" message. The
   engine combines that with silence-as-information (per-directed-edge
   send memoization: an unchanged payload re-sent to the same neighbor
   in the next round costs nothing on the wire once both endpoints
   have agreed on the silence convention).

   This module owns the parts that depend only on the graph: a
   deterministic clustering (each vertex picks the member of its
   closed neighborhood with the smallest seeded hash as its hub), and
   a binary-heap-shaped tree over each cluster's members in ascending
   id order, so every tree has degree at most 3 and the construction
   is reproducible from [(graph, seed)] alone. The engine never routes
   real deliveries through the trees — the logical execution (inboxes,
   adversary coin stream, metrics.[messages]/[total_bits], round
   series) is byte-for-byte the plain engine's — the trees define what
   the {e physical} stream would have cost, which the engine meters
   into [metrics.sent_physical]/[sent_bits].

   Per-run mutable scratch (payload memos, collect accumulators) is
   ['msg]-typed and lives inside [Engine.run]; a [t] can therefore be
   shared across runs and schedulers. The [stats] counters accumulate
   across every run the value is passed to, like a [Profile.t]. *)

type mode = Always | Auto of int

type stats = {
  mutable publishes : int;
  mutable collects : int;
  mutable suppressed : int;
  mutable markers : int;
  mutable auto_armed : int;
  mutable auto_disarmed : int;
}

type t = {
  graph : Grapho.Ugraph.t;
  seed : int;
  mode : mode;
  hub : int array;
  parent : int array;
  tree_deg : int array;
  trees : int;
  stats : stats;
}

(* splitmix-style avalanche; only relative order matters, so the
   [land max_int] truncation is harmless. *)
let mix seed w =
  let h = ((w + 1) * 0x9E3779B9) lxor (seed * 0x85EBCA6B) in
  let h = h lxor (h lsr 16) in
  let h = h * 0x21F0AAAD in
  let h = h lxor (h lsr 15) in
  let h = h * 0x735A2D97 in
  (h lxor (h lsr 15)) land max_int

let default_seed = 0x5EED5
let default_auto_window = 6

let create ?(seed = default_seed) ?(mode = Always) g =
  (match mode with
  | Auto w when w <= 0 ->
      invalid_arg "Frugal.create: Auto window must be positive"
  | _ -> ());
  let n = Grapho.Ugraph.n g in
  let hub = Array.make n 0 in
  for v = 0 to n - 1 do
    let best = ref v and best_h = ref (mix seed v) in
    Grapho.Ugraph.iter_neighbors
      (fun w ->
        let h = mix seed w in
        if h < !best_h || (h = !best_h && w < !best) then begin
          best := w;
          best_h := h
        end)
      g v;
    hub.(v) <- !best
  done;
  (* Bucket members by hub. Scanning vertices in ascending id order
     keeps each bucket sorted, which makes the heap shape — member i's
     parent is member (i-1)/2 — deterministic and id-ordered. *)
  let count = Array.make (max n 1) 0 in
  Array.iter (fun h -> count.(h) <- count.(h) + 1) hub;
  let start = Array.make (max n 1) 0 in
  let acc = ref 0 in
  for h = 0 to n - 1 do
    start.(h) <- !acc;
    acc := !acc + count.(h)
  done;
  let members = Array.make (max n 1) 0 in
  let cursor = Array.copy start in
  for v = 0 to n - 1 do
    let h = hub.(v) in
    members.(cursor.(h)) <- v;
    cursor.(h) <- cursor.(h) + 1
  done;
  let parent = Array.make n (-1) in
  let tree_deg = Array.make n 0 in
  let trees = ref 0 in
  for h = 0 to n - 1 do
    let lo = start.(h) in
    let len = count.(h) in
    if len > 0 then begin
      incr trees;
      for i = 1 to len - 1 do
        let v = members.(lo + i) in
        let p = members.(lo + ((i - 1) / 2)) in
        parent.(v) <- p;
        tree_deg.(v) <- tree_deg.(v) + 1;
        tree_deg.(p) <- tree_deg.(p) + 1
      done
    end
  done;
  {
    graph = g;
    seed;
    mode;
    hub;
    parent;
    tree_deg;
    trees = !trees;
    stats =
      {
        publishes = 0;
        collects = 0;
        suppressed = 0;
        markers = 0;
        auto_armed = 0;
        auto_disarmed = 0;
      };
  }

let graph t = t.graph
let seed t = t.seed
let mode t = t.mode
let auto_window t = match t.mode with Always -> 0 | Auto w -> w
let hub t v = t.hub.(v)
let tree_parent t v = t.parent.(v)
let tree_degree t v = t.tree_deg.(v)
let tree_count t = t.trees

let max_tree_degree t =
  Array.fold_left (fun acc d -> if d > acc then d else acc) 0 t.tree_deg

(* Engine hooks: bump one counter each, allocation-free. *)
let note_publish t = t.stats.publishes <- t.stats.publishes + 1
let note_collect t = t.stats.collects <- t.stats.collects + 1

let note_suppressed t k =
  t.stats.suppressed <- t.stats.suppressed + k

let note_marker t = t.stats.markers <- t.stats.markers + 1

let note_auto_decision t ~armed =
  if armed then t.stats.auto_armed <- t.stats.auto_armed + 1
  else t.stats.auto_disarmed <- t.stats.auto_disarmed + 1

let publishes t = t.stats.publishes
let collects t = t.stats.collects
let suppressed t = t.stats.suppressed
let markers t = t.stats.markers
let auto_armed t = t.stats.auto_armed
let auto_disarmed t = t.stats.auto_disarmed

let reset_stats t =
  t.stats.publishes <- 0;
  t.stats.collects <- 0;
  t.stats.suppressed <- 0;
  t.stats.markers <- 0;
  t.stats.auto_armed <- 0;
  t.stats.auto_disarmed <- 0
