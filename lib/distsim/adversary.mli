(** The adversarial network hook the round engine consults.

    Every theorem the repository reproduces is stated for a perfectly
    reliable synchronous network; this module is the other half of the
    story — a {e seeded, fully deterministic} adversary that
    crash-stops vertices at scheduled rounds, cuts links (permanently
    or for a round window), destroys messages with a fixed per-message
    probability, and duplicates them. The engine consults it in two
    places, both on the calling (merge) domain:

    - {!begin_round} at the start of every round, to activate the
      faults scheduled there (crashes, cut transitions);
    - {!consult} once per wire message, {e in delivery order} — which
      the engine's deterministic merge makes identical for sequential
      and [--par N] runs — so the drop/duplicate coin stream, and
      therefore the whole faulted execution, is bit-identical for any
      shard count.

    Values of this type are stateful per run; the engine calls
    {!reset} before round 0, so one adversary can be reused across
    runs and always replays the same fault sequence. Schedules are
    normally built from the {!Faults} DSL ({!Faults.compile}) rather
    than with {!make} directly. *)

type verdict =
  | Deliver  (** pass the message through untouched *)
  | Duplicate  (** deliver two copies (both are metered) *)
  | Drop of Trace.drop_reason  (** destroy the message *)

type t

val make :
  ?seed:int ->
  ?drop_p:float ->
  ?dup_p:float ->
  ?crashes:(int * int) list ->
  ?cuts:((int * int) * (int * int)) list ->
  unit ->
  t
(** [make ()] builds an adversary. [drop_p] (default 0) and [dup_p]
    (default 0) are per-message probabilities in [[0, 1)], drawn from a
    private SplitMix64 stream seeded by [seed] (default 0). [crashes]
    is a list of [(round, vertex)] crash-stop events (rounds are
    clamped to [>= 1]; round 0 is initialization). [cuts] is a list of
    [((u, v), (from_round, upto_round))] link failures, active during
    rounds [from_round .. upto_round] inclusive ([max_int] for a
    permanent cut); both directions of the link are cut. Raises
    [Invalid_argument] on probabilities outside [[0, 1)]. *)

val reset : t -> n:int -> unit
(** Rewind to the pre-run state for a graph on [n] vertices: nobody
    crashed, the coin stream back at its seed. The engine calls this
    at the start of every run. Scheduled crash vertices [>= n] are
    ignored. *)

val begin_round : t -> round:int -> (Trace.fault_kind -> unit) -> unit
(** Activate the faults scheduled at [round], invoking the callback
    once per activation ([Crash v] exactly once per vertex over a
    run; [Cut]/[Restore] at a cut's window boundaries) in a
    deterministic order. The engine performs the crash-stop
    bookkeeping and trace emission in the callback. *)

val consult : t -> src:int -> dst:int -> verdict
(** The per-message verdict at the current round. Checks, in order:
    crashed endpoint, cut link, random drop, duplication. Advances the
    coin stream only when the corresponding probability is positive,
    so a [drop_p = 0] adversary with no scheduled faults is
    observationally identical to no adversary at all. *)

val blocks : t -> src:int -> dst:int -> Trace.drop_reason option
(** The deterministic, state-only prefix of {!consult}: [Some reason]
    iff a message on [src -> dst] would be dropped by a crashed
    endpoint or an active cut {e right now}. Never advances the coin
    stream, so it is safe to call any number of times without
    perturbing the drop/duplicate sequence — the engine's frugal
    accounting uses it to decide whether an end-of-silence marker
    could physically traverse an edge. *)

val is_crashed : t -> int -> bool
val crashed_count : t -> int

val crashed_list : t -> int list
(** Vertices crash-stopped so far, ascending. *)

val has_faults : t -> bool
(** Whether the schedule contains anything at all — [false] means
    every verdict is [Deliver] and no fault will ever activate. *)
