(** Fault schedules: a small declarative layer over {!Adversary}.

    A {!schedule} is a graph-size-independent description of what goes
    wrong during a run — message loss and duplication probabilities,
    crash-stop events (by vertex id or as a fraction of the network),
    and link cuts (permanent or windowed). {!compile} instantiates it
    for an [n]-vertex graph as the {!Adversary.t} hook that
    [Engine.run ?adversary] consults; {!parse}/{!to_string} give it a
    concrete syntax for the CLI and the bench harness:

    {v drop=0.05,dup=0.01,crash=0.1@r3,crash=v7@r5,cut=2-9@r4..8,seed=42 v}

    - [drop=P] — destroy each wire message independently with
      probability [P] (in [[0, 1)]);
    - [dup=P] — deliver two copies with probability [P];
    - [crash=F@rR] — crash-stop [round(F·n)] vertices (chosen
      deterministically from the seed) at the start of round [R];
      [crash=vID@rR] crash-stops the specific vertex [ID]. [@rR]
      defaults to round 1;
    - [cut=U-V] — cut the link [{U,V}] (both directions) from round 1
      forever; [cut=U-V@rR] from round [R] forever; [cut=U-V@rA..B]
      during rounds [A..B] inclusive;
    - [seed=S] — the seed for the drop/dup coin stream and the
      fraction-crash vertex choice (default 0).

    Same schedule + same seed + same [n] ⇒ the same faulted execution,
    bit-for-bit, for any scheduler and shard count (see {!Engine.run}).

    {!with_retry} is the protocol-side counterpart: a spec wrapper that
    retransmits every message [attempts] times and dedups the receive
    side, trading bandwidth for loss resilience. *)

type crash_spec =
  | Crash_vertex of int * int  (** [Crash_vertex (v, r)]: vertex [v] at round [r] *)
  | Crash_frac of float * int
      (** [Crash_frac (f, r)]: [round (f * n)] seed-chosen vertices at
          round [r]; [f] in [[0, 1]] *)

type schedule = {
  seed : int;
  drop_p : float;
  dup_p : float;
  crashes : crash_spec list;
  cuts : ((int * int) * (int * int)) list;
      (** [((u, v), (from_round, upto_round))], [max_int] = forever *)
}

val empty : schedule
(** No faults: [compile ~n empty] is normalized away by the engine. *)

val is_empty : schedule -> bool

val parse : string -> (schedule, string) result
(** Parses the comma-separated DSL above. The empty string (or only
    whitespace) is {!empty}. [Error] pinpoints the offending clause. *)

val to_string : schedule -> string
(** Canonical DSL form; [parse (to_string s)] round-trips every field
    ([Ok s] up to clause order, which [to_string] fixes). *)

val compile : n:int -> schedule -> Adversary.t
(** Instantiate for an [n]-vertex graph. Fraction crashes are resolved
    to concrete vertex ids here, by a private RNG stream derived from
    [seed] (distinct from the drop/dup coin stream), so the same
    schedule on the same [n] always crashes the same vertices. *)

val crashed_of : n:int -> schedule -> (int * int) list
(** The concrete [(round, vertex)] crash list {!compile} resolves to —
    exposed so survivor-analysis code can know who will die without
    running anything. *)

val with_retry :
  attempts:int -> ('s, 'm) Engine.spec -> ('s, 'm) Engine.spec
(** [with_retry ~attempts spec] sends every message [attempts] times
    (metered: bandwidth is really spent) and collapses the receive
    side to the first copy per source
    ({!Engine.inbox_keep_first_per_src}), so a message survives a
    random-drop adversary with probability [1 - p^attempts] instead of
    [1 - p]. Requires the wrapped protocol to send at most one message
    per (src, dst) per round — true of every protocol here.
    [attempts = 1] returns [spec] unchanged; raises [Invalid_argument]
    on [attempts < 1]. Par-safe: the wrapper only appends to the
    step's own outbox and compacts the step's own inbox view. *)
