(** Allocation-free log₂-binned integer histograms.

    Bin 0 holds the value 0 (non-positive values clamp there); bin
    [b >= 1] holds the half-open range [2^(b-1), 2^b). Recording is
    pure field increments on a preallocated structure — no
    allocation in the steady state — so the profiler can record
    per-message payload bits and per-vertex inbox sizes on the
    engine's hot path without disturbing its GC guarantees.

    All stored aggregates (count, sum, min, max, per-bin counts) are
    order-independent, so {!merge} of per-shard histograms equals
    recording the concatenated stream sequentially: histogram
    contents are deterministic across shard counts. Percentiles are
    estimates (exact bin, linear interpolation within the bin,
    clamped to the observed min/max) and monotone in [p]. *)

type t

val create : unit -> t
(** A fresh empty histogram. The only allocating operation. *)

val clear : t -> unit
(** Reset to empty in place. *)

val record : t -> int -> unit
(** Record one observation. Negative values clamp to 0.
    Allocation-free. *)

val count : t -> int
val sum : t -> int
val min_value : t -> int
(** Smallest recorded value; 0 when empty. *)

val max_value : t -> int
(** Largest recorded value; 0 when empty. *)

val mean : t -> float
(** Arithmetic mean; 0.0 when empty. *)

val percentile : t -> float -> int
(** [percentile h p] estimates the value at quantile [p] (clamped to
    [0,1]): the bin holding the rank-⌈p·count⌉ element is found
    exactly, and the estimate interpolates linearly across the bin's
    value range clamped to the recorded min/max. Monotone in [p];
    exact whenever the bin holds a single distinct value. 0 when
    empty. *)

val merge_into : into:t -> t -> unit
(** Add [src]'s contents into [into]. Exact and order-independent:
    merging per-shard histograms in any order equals recording the
    concatenated stream into one histogram. Allocation-free. *)

val merge : t -> t -> t
(** Fresh histogram holding both arguments' contents. *)

val equal : t -> t -> bool
(** Structural equality on all aggregates and bins. *)

val num_bins : int
(** Number of bins (63: bin 0 plus one per possible bit length). *)

val bin_index : int -> int
(** The bin an observation lands in: 0 for [v <= 0], otherwise the
    bit length of [v] (so [bin_index 1 = 1], [bin_index 4 = 3]). *)

val bin_lo : int -> int
(** Smallest value of a bin: [bin_lo 0 = 0], else [2^(b-1)]. *)

val bin_hi : int -> int
(** Largest value of a bin: [bin_hi 0 = 0], else [2^b - 1]. *)

val bin_count : t -> int -> int
(** Observations recorded in a bin. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [n/min/p50/p90/p99/max/mean] summary. *)
