type 'a state = { mutable value : 'a }

(* Broadcast by pushing straight into the engine's reused outbox — no
   send-record lists anywhere in this module. *)
let broadcast_arr out neighbors payload =
  Array.iter (fun u -> Engine.emit out ~dst:u payload) neighbors

let broadcast_list out targets payload =
  List.iter (fun u -> Engine.emit out ~dst:u payload) targets

(* Step-time broadcast straight off the CSR row: [Ugraph.neighbors]
   copies the row into a fresh array on every call, which would be
   per-vertex-per-round garbage in the hot loop. *)
let broadcast_nbrs out graph vertex payload =
  Grapho.Ugraph.iter_neighbors
    (fun u -> Engine.emit out ~dst:u payload)
    graph vertex

(* Shared shape: each vertex holds a value, rebroadcasts it whenever it
   improves, and is done while no improvement arrives. Messages carry
   values of the same type as the state. *)
let improving ~initial ~announces_first ~improve ~measure ?model ?par ?frugal
    graph =
  let model =
    match model with
    | Some m -> m
    | None -> Model.congest ~n:(max 2 (Grapho.Ugraph.n graph)) ()
  in
  let spec =
    {
      Engine.init =
        (fun ~n:_ ~vertex ~neighbors ~out ->
          let v = initial vertex in
          if announces_first vertex then broadcast_arr out neighbors v;
          { value = v });
      step =
        (fun ~round:_ ~vertex st inbox ~out ->
          let improved = ref false in
          Engine.inbox_iter
            (fun ~src:_ msg ->
              match improve st.value msg with
              | Some better ->
                  st.value <- better;
                  improved := true
              | None -> ())
            inbox;
          if !improved then begin
            broadcast_nbrs out graph vertex st.value;
            (st, `Continue)
          end
          else (st, `Done));
      measure;
    }
  in
  let states, metrics = Engine.run ?par ?frugal ~model ~graph spec in
  (Array.map (fun s -> s.value) states, metrics)

let flood_min_id ?model ?par ?frugal graph =
  let bits = Message.bits_for_id ~n:(max 2 (Grapho.Ugraph.n graph)) in
  improving ?model ?par ?frugal graph
    ~initial:(fun v -> v)
    ~announces_first:(fun _ -> true)
    ~improve:(fun current incoming ->
      if incoming < current then Some incoming else None)
    ~measure:(fun _ -> bits)

let bfs_distances ?model ?par ?frugal ~root graph =
  let bits = Message.bits_for_id ~n:(max 2 (Grapho.Ugraph.n graph)) in
  improving ?model ?par ?frugal graph
    ~initial:(fun v -> if v = root then 0 else max_int)
    ~announces_first:(fun v -> v = root)
    ~improve:(fun current incoming ->
      if incoming < max_int && incoming + 1 < current then Some (incoming + 1)
      else None)
    ~measure:(fun _ -> bits)

(* ------------------------------------------------------------------ *)
(* Luby's MIS: phases of (Value, Joined, -). *)

type mis_state = {
  rng : Grapho.Rng.t;
  mutable in_mis : bool;
  mutable dead : bool;
  mutable my_value : int;
  mutable best_seen : int option;
}

type mis_msg = Value of int | Joined_mis

let luby_mis ?(seed = 0x715B) ?model graph =
  let n = max 2 (Grapho.Ugraph.n graph) in
  let model =
    match model with Some m -> m | None -> Model.congest ~n ()
  in
  let master = Grapho.Rng.create seed in
  let streams =
    Array.init (Grapho.Ugraph.n graph) (fun _ -> Grapho.Rng.split master)
  in
  let bound = n * n * n in
  let spec =
    {
      Engine.init =
        (fun ~n:_ ~vertex ~neighbors ~out ->
          let st =
            {
              rng = streams.(vertex);
              in_mis = false;
              dead = false;
              my_value = 0;
              best_seen = None;
            }
          in
          st.my_value <- Grapho.Rng.int st.rng bound;
          broadcast_arr out neighbors (Value st.my_value);
          st);
      step =
        (fun ~round ~vertex st inbox ~out ->
          if st.dead || st.in_mis then (st, `Done)
          else begin
            let phase = (round - 1) mod 3 in
            (match phase with
            | 0 ->
                (* Received live neighbor values; join if strictly
                   first in (value, id) order — monomorphic compare. *)
                let beaten =
                  Engine.inbox_fold
                    (fun acc ~src m ->
                      acc
                      ||
                      match m with
                      | Value v ->
                          v < st.my_value || (v = st.my_value && src < vertex)
                      | _ -> false)
                    false inbox
                in
                if not beaten then begin
                  st.in_mis <- true;
                  broadcast_nbrs out graph vertex Joined_mis
                end
            | 1 ->
                (* Neighbors joining kill this vertex. *)
                if
                  Engine.inbox_fold
                    (fun acc ~src:_ m -> acc || m = Joined_mis)
                    false inbox
                then st.dead <- true
            | _ ->
                (* Start the next phase with a fresh value. *)
                st.my_value <- Grapho.Rng.int st.rng bound;
                broadcast_nbrs out graph vertex (Value st.my_value));
            let status =
              if st.dead || st.in_mis then `Done else `Continue
            in
            (st, status)
          end);
      measure =
        (fun m ->
          match m with
          | Value _ -> 2 + (3 * Message.bits_for_id ~n)
          | Joined_mis -> 2);
    }
  in
  let states, metrics = Engine.run ~model ~graph spec in
  (Array.map (fun st -> st.in_mis) states, metrics)

(* ------------------------------------------------------------------ *)
(* Maximal matching by random head/tail proposals (Israeli-Itai
   style): each phase, every active vertex flips a coin; heads propose
   to a random active tail neighbor, tails accept one proposer. The
   head/tail asymmetry rules out mutual-proposal deadlocks. *)

type mm_state = {
  mm_rng : Grapho.Rng.t;
  mutable mate : int;
  mutable announced : bool;
  mutable is_head : bool;
  mutable tails : int list;
  mutable live_nbrs : int list;
}

type mm_msg = Mm_coin of bool | Mm_propose | Mm_accept | Mm_matched

let maximal_matching ?(seed = 0x7A7E) ?model graph =
  let n = max 2 (Grapho.Ugraph.n graph) in
  let model =
    match model with Some m -> m | None -> Model.congest ~n ()
  in
  let master = Grapho.Rng.create seed in
  let streams =
    Array.init (Grapho.Ugraph.n graph) (fun _ -> Grapho.Rng.split master)
  in
  let spec =
    {
      Engine.init =
        (fun ~n:_ ~vertex ~neighbors ~out ->
          let st =
            {
              mm_rng = streams.(vertex);
              mate = -1;
              announced = false;
              is_head = false;
              tails = [];
              live_nbrs = Array.to_list neighbors;
            }
          in
          st.is_head <- Grapho.Rng.bool st.mm_rng;
          broadcast_list out st.live_nbrs (Mm_coin st.is_head);
          st);
      step =
        (fun ~round ~vertex st inbox ~out ->
          ignore vertex;
          (* Matched neighbors leave the pool, whatever the phase. *)
          Engine.inbox_iter
            (fun ~src m ->
              if m = Mm_matched then
                st.live_nbrs <- List.filter (fun u -> u <> src) st.live_nbrs)
            inbox;
          let finished () = st.mate >= 0 || st.live_nbrs = [] in
          let phase = (round - 1) mod 4 in
          (match phase with
          | 0 ->
              (* Coins in hand: heads court a random active tail. *)
              if st.mate < 0 then begin
                st.tails <-
                  List.rev
                    (Engine.inbox_fold
                       (fun acc ~src m ->
                         match m with
                         | Mm_coin false when List.mem src st.live_nbrs ->
                             src :: acc
                         | _ -> acc)
                       [] inbox);
                if st.is_head && st.tails <> [] then begin
                  let pick =
                    List.nth st.tails
                      (Grapho.Rng.int st.mm_rng (List.length st.tails))
                  in
                  Engine.emit out ~dst:pick Mm_propose
                end
              end
          | 1 ->
              (* Tails accept the smallest-id proposer. *)
              if st.mate < 0 then begin
                let proposers =
                  Engine.inbox_fold
                    (fun acc ~src m ->
                      match m with Mm_propose -> src :: acc | _ -> acc)
                    [] inbox
                in
                match List.sort Int.compare proposers with
                | [] -> ()
                | u :: _ ->
                    st.mate <- u;
                    st.announced <- true;
                    Engine.emit out ~dst:u Mm_accept;
                    broadcast_list out st.live_nbrs Mm_matched
              end
          | 2 ->
              (* Heads learn their fate: an accept can only come from
                 the single tail they proposed to. *)
              if st.mate < 0 then
                Engine.inbox_iter
                  (fun ~src m ->
                    if m = Mm_accept && st.mate < 0 then st.mate <- src)
                  inbox;
              if st.mate >= 0 && not st.announced then begin
                st.announced <- true;
                broadcast_list out st.live_nbrs Mm_matched
              end
          | _ ->
              (* Fresh coins for the next phase. *)
              if not (finished ()) then begin
                st.is_head <- Grapho.Rng.bool st.mm_rng;
                broadcast_list out st.live_nbrs (Mm_coin st.is_head)
              end);
          (st, if finished () then `Done else `Continue));
      measure = (fun _ -> 3);
    }
  in
  let states, metrics = Engine.run ~model ~graph spec in
  (Array.map (fun st -> st.mate) states, metrics)
